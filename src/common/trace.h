// Structured tracing: scoped timers, hierarchical spans and a bounded span
// log on top of the metrics registry.
//
// A ScopedTimer measures the lifetime of a scope and, on destruction,
// observes the elapsed milliseconds into a Histogram and (optionally)
// appends a span to the global TraceLog. The time source is pluggable:
//   * default — the process-default clock: monotonic wall clock (benches,
//     vkey_sim, the pipeline) unless set_default_now() installs an override;
//   * any NowFn returning milliseconds — protocol code passes a lambda over
//     the PR-1 SimClock, so spans inside a simulated session are measured
//     in *virtual* time and stay bit-reproducible.
// The timer resolves its clock ONCE at start, so a set_default_now() toggle
// mid-span can never mix two time bases inside one measurement.
//
// Spans form per-run trees, not a flat list: every recording timer is
// assigned a process-unique id at start (its stable sequence number — ids
// are handed out in start order) and parents itself under the innermost
// open span of its execution lane via a thread-local span stack. The
// deterministic thread pool (common/parallel) propagates the submitting
// call's open span into its worker lanes and tags them with a lane id, so
// fan-out work still hangs off the stage that spawned it. Spans carry typed
// key=value attributes (`block=7`, `reason="duplicate"`) and a clock
// domain: kWall for wall-clock timers, kVirtual for SimClock-driven ones.
//
// The TraceLog is a bounded in-memory ring (oldest spans drop first) for
// post-run inspection and export; it is off by default (enable via
// VKEY_TRACE=on or TraceLog::set_enabled) because span capture allocates.
// chrome_trace() exports the buffer as Chrome trace-event JSON
// (chrome://tracing / Perfetto loadable): spans are emitted in canonical
// (start_ms, seq) order with ids remapped to dense indices, so a
// virtual-domain export is byte-identical for any worker-lane count — the
// PR-4 determinism contract extended to observability (DESIGN.md §10).
// Timers always honor the metrics enabled() switch: with VKEY_METRICS=off a
// ScopedTimer never reads the clock, and the disabled path performs no
// allocation at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"

namespace vkey::trace {

/// Millisecond time source. Must be monotone within one timer's lifetime.
using NowFn = std::function<double()>;

/// Monotonic wall clock in milliseconds (steady_clock). This is the single
/// sanctioned wall-clock read in the library (vkey_lint's `wall-clock` rule
/// allowlists only its definition); all other code takes time from a NowFn.
double wall_now_ms();

/// Install the process-default time source used by ScopedTimers constructed
/// without an explicit NowFn (an empty function restores the wall clock).
/// A simulation can point this at a SimClock so every timer in the process
/// — including ones in code that never heard of virtual time — measures
/// virtual milliseconds and stays bit-reproducible. Thread-safe against
/// concurrent timers: each timer snapshots the override once at start.
void set_default_now(NowFn now);

/// Milliseconds from the process-default source (wall clock unless
/// set_default_now installed an override).
double default_now_ms();

/// Snapshot of the installed override (empty when the wall clock is the
/// default). Timers pin this at start so a concurrent set_default_now()
/// cannot change the time base mid-span.
NowFn default_now_snapshot();

/// Which clock produced a span's timestamps. Virtual-domain spans are
/// bit-reproducible and are the only ones a deterministic export may keep.
enum class Domain : std::uint8_t { kWall, kVirtual };

std::string to_string(Domain d);

/// Typed span attribute: key plus an int / double / string value.
struct Attr {
  enum class Kind : std::uint8_t { kInt, kDouble, kString };

  std::string key;
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;

  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Attr(std::string k, T v)
      : key(std::move(k)), kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}
  Attr(std::string k, double v)
      : key(std::move(k)), kind(Kind::kDouble), d(v) {}
  Attr(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kString), s(std::move(v)) {}
  Attr(std::string k, const char* v)
      : key(std::move(k)), kind(Kind::kString), s(v) {}

  json::Value to_json() const;
};

struct Span {
  std::string name;
  double start_ms = 0.0;
  double duration_ms = 0.0;
  /// Process-unique id, assigned in start order (the stable sequence
  /// number). 0 only on legacy spans recorded through the 3-argument
  /// record() overload before an id could be taken.
  std::uint64_t id = 0;
  /// Id of the innermost span open when this one started; 0 = root.
  std::uint64_t parent = 0;
  /// Execution lane: 0 for the calling thread, 1..N-1 for borrowed pool
  /// workers (see parallel::parallel_for's lane annotation).
  std::uint32_t lane = 0;
  Domain domain = Domain::kWall;
  /// Instant event (zero duration, Chrome phase "i") rather than a scope.
  bool instant = false;
  std::vector<Attr> attrs;
};

/// Bounded global span ring. Oldest spans are dropped once `capacity`
/// is reached (the drop count is kept so exports are honest about it).
class TraceLog {
 public:
  static TraceLog& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  void set_capacity(std::size_t n);

  /// Reserve the next span id (ids are handed out in start order and double
  /// as the canonical-sort sequence number).
  std::uint64_t next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Append a fully-formed span (assigns an id if the span carries none).
  void record(Span span);
  /// Legacy flat append: name + timestamps, ambient parent/lane, wall
  /// domain.
  void record(const std::string& name, double start_ms, double duration_ms);
  /// Append an instant event at `t_ms` under the current open span.
  void instant(std::string name, double t_ms, Domain domain,
               std::vector<Attr> attrs = {});

  std::vector<Span> spans() const;
  std::size_t dropped() const;
  void clear();

  /// {"spans": [{"name", "start_ms", "dur_ms", "id", "parent", "lane",
  ///             "domain", "attrs"}, ...], "dropped": n}
  json::Value snapshot() const;

  /// Chrome trace-event JSON (chrome://tracing / Perfetto): complete events
  /// ("ph":"X") and instants ("ph":"i") in canonical (start_ms, seq) order
  /// with ids remapped to dense indices. `virtual_only` keeps only
  /// SimClock-domain spans — that export is byte-identical across runs and
  /// worker-lane counts (the determinism contract; CI byte-diffs it).
  json::Value chrome_trace(bool virtual_only = false) const;

  /// Write chrome_trace() to `path`; false (with a note on stderr) when the
  /// file cannot be opened.
  bool write_chrome_trace(const std::string& path,
                          bool virtual_only = false) const;

 private:
  TraceLog();

  void push_locked(Span&& span);

  mutable std::mutex mu_;
  // Atomic: read lock-free on every timer stop, possibly while another
  // thread toggles it (the TSan stress test exercises exactly this).
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::size_t capacity_ = 1 << 16;
  std::size_t dropped_ = 0;
  // Circular buffer: ring_[(head_ + k) % size] is the k-th oldest span.
  // Wraparound is O(1) instead of the old erase-front O(n) memmove.
  std::vector<Span> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Innermost open span id on this thread (0 = none). New spans and instant
/// events parent under it.
std::uint64_t current_parent() noexcept;

/// Execution-lane id of this thread (0 = a calling thread).
std::uint32_t current_lane() noexcept;

/// RAII lane annotation for pool workers: installs a lane id and an
/// inherited ambient parent for the duration of a borrowed work chunk, so
/// spans opened inside parallel_for still hang off the submitting stage.
/// Restores the previous context on destruction.
class LaneScope {
 public:
  LaneScope(std::uint32_t lane, std::uint64_t ambient_parent) noexcept;
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;
  ~LaneScope();

 private:
  std::uint32_t prev_lane_;
  std::uint64_t prev_parent_;
};

/// RAII scope timer. Records into `hist` (and the TraceLog, when enabled)
/// when the scope ends; stop() ends it early and returns the elapsed ms.
/// Tracing participation is decided at construction: metrics on, TraceLog
/// enabled and a non-empty name. When any of those is false the timer
/// performs no allocation for the trace machinery (and with metrics off it
/// never reads the clock at all).
class ScopedTimer {
 public:
  /// Time into an explicit histogram with the process-default clock.
  explicit ScopedTimer(metrics::Histogram& hist, std::string_view name = {});
  /// Time with a custom clock (e.g. a SimClock lambda, in virtual ms).
  /// Spans from explicit clocks are tagged Domain::kVirtual: in this tree
  /// every explicit NowFn is a virtual time base.
  ScopedTimer(metrics::Histogram& hist, NowFn now, std::string_view name = {});
  /// Convenience: registry histogram `name` with default time buckets.
  explicit ScopedTimer(const std::string& name);

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Attach a typed attribute to the recorded span. No-op (and
  /// allocation-free) when the timer is not tracing.
  template <typename T>
  ScopedTimer& attr(std::string_view key, T&& value) {
    if (id_ != 0) {
      attrs_.emplace_back(std::string(key), std::forward<T>(value));
    }
    return *this;
  }

  /// The span id this timer records under (0 when not tracing). Children
  /// started on this thread while the timer is open parent under it.
  std::uint64_t span_id() const noexcept { return id_; }

  /// Stop now (idempotent); returns elapsed ms (0 when metrics disabled).
  double stop();

  ~ScopedTimer();

 private:
  void begin(std::string_view name, bool explicit_clock);

  metrics::Histogram* hist_;
  NowFn now_;  // empty -> wall clock (default override is pinned at start)
  std::string name_;           // filled only when tracing
  std::vector<Attr> attrs_;    // filled only when tracing
  double start_ms_ = 0.0;
  std::uint64_t id_ = 0;       // 0 -> not tracing
  std::uint64_t prev_parent_ = 0;
  std::uint32_t lane_ = 0;
  Domain domain_ = Domain::kWall;
  bool running_ = false;
};

}  // namespace vkey::trace
