#include "common/alloc_stats.h"

#include <atomic>

#include "common/metrics.h"

namespace vkey::alloc_stats {

namespace {

// constinit: operator new can fire before any static constructor runs, so
// the counters must be zero-initialized at load time, not at first use.
constinit std::atomic<std::uint64_t> g_allocations{0};
constinit std::atomic<std::uint64_t> g_frees{0};
constinit std::atomic<std::uint64_t> g_bytes{0};
constinit std::atomic<bool> g_installed{false};

// Trivially-initialized thread_local: no allocating guard, safe to read
// from inside operator new itself.
thread_local bool t_paused = false;

}  // namespace

bool hooks_installed() noexcept {
  return g_installed.load(std::memory_order_relaxed);
}

Totals totals() noexcept {
  Totals t;
  t.allocations = g_allocations.load(std::memory_order_relaxed);
  t.frees = g_frees.load(std::memory_order_relaxed);
  t.bytes = g_bytes.load(std::memory_order_relaxed);
  return t;
}

std::int64_t live_blocks() noexcept {
  return static_cast<std::int64_t>(
             g_allocations.load(std::memory_order_relaxed)) -
         static_cast<std::int64_t>(g_frees.load(std::memory_order_relaxed));
}

void on_alloc(std::size_t bytes) noexcept {
  g_installed.store(true, std::memory_order_relaxed);
  if (t_paused) return;
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void on_free() noexcept {
  if (t_paused) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

bool paused() noexcept { return t_paused; }

PauseScope::PauseScope() noexcept : prev_(t_paused) { t_paused = true; }
PauseScope::~PauseScope() { t_paused = prev_; }

PhaseScope::PhaseScope() noexcept
    : start_(totals()), live_start_(live_blocks()) {}

Totals PhaseScope::delta() const noexcept {
  const Totals now = totals();
  Totals d;
  d.allocations = now.allocations - start_.allocations;
  d.frees = now.frees - start_.frees;
  d.bytes = now.bytes - start_.bytes;
  return d;
}

std::int64_t PhaseScope::live_delta() const noexcept {
  return live_blocks() - live_start_;
}

void publish_metrics() {
  auto& reg = metrics::Registry::global();
  static metrics::Gauge& allocations = reg.gauge("alloc.allocations");
  static metrics::Gauge& frees = reg.gauge("alloc.frees");
  static metrics::Gauge& bytes = reg.gauge("alloc.bytes");
  static metrics::Gauge& live = reg.gauge("alloc.live_blocks");
  const Totals t = totals();
  allocations.set(static_cast<double>(t.allocations));
  frees.set(static_cast<double>(t.frees));
  bytes.set(static_cast<double>(t.bytes));
  live.set(static_cast<double>(live_blocks()));
}

}  // namespace vkey::alloc_stats
