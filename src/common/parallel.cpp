#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace vkey::parallel {

namespace {

// Registered once; afterwards each dispatch is one relaxed atomic op, the
// same budget as the rest of the metrics layer.
metrics::Counter& tasks_counter() {
  static metrics::Counter& c =
      metrics::Registry::global().counter("pipeline.parallel.tasks");
  return c;
}

metrics::Gauge& queue_depth_gauge() {
  static metrics::Gauge& g =
      metrics::Registry::global().gauge("parallel.pool.queue_depth");
  return g;
}

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t startup_default() {
  if (const char* env = std::getenv("VKEY_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return hardware_threads();
}

std::atomic<std::size_t>& default_threads_slot() {
  static std::atomic<std::size_t> v{startup_default()};
  return v;
}

}  // namespace

std::size_t default_threads() {
  return default_threads_slot().load(std::memory_order_relaxed);
}

void set_default_threads(std::size_t n) {
  default_threads_slot().store(n == 0 ? startup_default() : n,
                               std::memory_order_relaxed);
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stop = false;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (stop && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
        queue_depth_gauge().set(static_cast<double>(queue.size()));
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl()) {
  const std::size_t n = workers == 0 ? 1 : workers;
  impl_->workers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& t : impl_->workers) t.join();
  delete impl_;
}

std::size_t ThreadPool::workers() const noexcept {
  return impl_->workers.size();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    VKEY_REQUIRE(!impl_->stop, "submit on a stopped pool");
    impl_->queue.push_back(std::move(task));
    queue_depth_gauge().set(static_cast<double>(impl_->queue.size()));
  }
  tasks_counter().add(1);
  impl_->cv.notify_one();
}

ThreadPool& ThreadPool::global() {
  // Never destroyed: worker threads must not outlive a destructed pool and
  // static teardown order across translation units is unknowable (same
  // pattern as metrics::Registry::global()).
  static ThreadPool* pool = [] {
    std::size_t n = hardware_threads();
    if (n < 2) n = 2;
    if (default_threads() > n) n = default_threads();
    return new ThreadPool(n);
  }();
  return *pool;
}

namespace {

/// State shared between the caller and its borrowed workers for one
/// parallel_for call. Lives on the caller's stack: the caller joins every
/// helper before returning.
struct ForState {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t helpers_active = 0;
  // Lowest observed throwing index wins, so a single failing index
  // propagates deterministically under any schedule.
  std::size_t err_index = 0;
  std::exception_ptr err;

  void run_chunks() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t begin =
          cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = begin + grain < n ? begin + grain : n;
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!err || i < err_index) {
            err = std::current_exception();
            err_index = i;
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  }
};

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  // Touch the pool instruments on every call, including the inline path:
  // which names exist in a metrics snapshot must depend only on the code
  // path taken, never on the lane count (CI byte-diffs snapshots between
  // --threads 1 and --threads 4).
  tasks_counter();
  queue_depth_gauge();
  if (n == 0) return;
  std::size_t lanes = threads == 0 ? default_threads() : threads;
  if (lanes > n) lanes = n;
  if (lanes <= 1) {
    // The single-thread reference path: no pool, no atomics, pure loop.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  ThreadPool& pool = ThreadPool::global();
  if (lanes > pool.workers() + 1) lanes = pool.workers() + 1;

  ForState st;
  st.fn = &fn;
  st.n = n;
  // Coarse enough to amortize the cursor, fine enough to balance lanes.
  st.grain = n / (lanes * 8) > 1 ? n / (lanes * 8) : 1;
  st.helpers_active = lanes - 1;

  // Lane annotation: spans opened inside fn on a borrowed worker carry the
  // helper's lane id and still parent under the span that was open on the
  // caller when the fan-out started (the submitting stage).
  const std::uint64_t ambient_parent = trace::current_parent();
  for (std::size_t h = 0; h + 1 < lanes; ++h) {
    pool.submit([&st, h, ambient_parent] {
      trace::LaneScope lane(static_cast<std::uint32_t>(h + 1),
                            ambient_parent);
      st.run_chunks();
      std::lock_guard<std::mutex> lock(st.mu);
      if (--st.helpers_active == 0) st.done_cv.notify_all();
    });
  }
  st.run_chunks();  // the caller is a lane too (lane 0, ambient context)

  std::unique_lock<std::mutex> lock(st.mu);
  st.done_cv.wait(lock, [&] { return st.helpers_active == 0; });
  if (st.err) std::rethrow_exception(st.err);
}

}  // namespace vkey::parallel
