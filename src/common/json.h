// Minimal JSON document model for the observability layer.
//
// The metrics exporter, the per-bench `--json` snapshots and bench_runner's
// EXPERIMENTS.md regeneration all need to write — and read back — small JSON
// documents without an external dependency. This Value covers exactly that:
// the six JSON types, insertion-ordered objects (so a dump is deterministic
// and diffs are stable), shortest-round-trip number formatting, and a strict
// recursive-descent parser that throws vkey::Error on malformed input.
//
// Not a general-purpose JSON library: no comments, no NaN/Inf (rejected on
// write — they are not JSON), no \uXXXX escapes beyond what the exporter
// emits (parse accepts them for ASCII code points).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace vkey::json {

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered key/value list (objects are small; linear lookup).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), num_(d) {}
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Value(T i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Value array() { Value v; v.type_ = Type::kArray; return v; }
  static Value object() { Value v; v.type_ = Type::kObject; return v; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw vkey::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Array append (value must be an array).
  void push_back(Value v);

  /// Object field write: inserts or overwrites, preserving first-insertion
  /// order (value must be an object).
  void set(const std::string& key, Value v);

  /// Object field read; throws if absent or not an object.
  const Value& at(const std::string& key) const;
  /// Object field lookup; nullptr when absent.
  const Value* find(const std::string& key) const;

  std::size_t size() const;

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level
  /// and a trailing newline at top level; 0 emits the compact form.
  std::string dump(int indent = 2) const;

  /// Strict parse of a complete document; throws vkey::Error with the byte
  /// offset of the first error.
  static Value parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// JSON string escaping (quotes not included).
std::string escape(const std::string& s);

/// Shortest round-trip decimal formatting of a double (std::to_chars), the
/// rule that makes dumps deterministic across runs. Integral values within
/// 2^53 are printed without a decimal point. Throws on NaN/Inf; Value::dump
/// instead normalizes a non-finite number to null so a degenerate metric can
/// never produce a document that downstream parsers reject.
std::string format_number(double v);

}  // namespace vkey::json
