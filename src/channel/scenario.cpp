#include "channel/scenario.h"

#include "common/error.h"

namespace vkey::channel {

std::string to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kV2IUrban:
      return "V2I-Urban";
    case ScenarioKind::kV2IRural:
      return "V2I-Rural";
    case ScenarioKind::kV2VUrban:
      return "V2V-Urban";
    case ScenarioKind::kV2VRural:
      return "V2V-Rural";
  }
  throw Error("unknown ScenarioKind");
}

ScenarioConfig make_scenario(ScenarioKind kind, double speed_kmh) {
  VKEY_REQUIRE(speed_kmh > 0.0, "vehicle speed must be positive");
  ScenarioConfig cfg;
  cfg.kind = kind;
  cfg.speed_a_kmh = speed_kmh;
  cfg.speed_b_kmh = cfg.is_v2v() ? speed_kmh : 0.0;

  if (cfg.is_urban()) {
    // Urban NLOS: strong multipath, fast spatial shadowing decorrelation.
    cfg.path_loss_exponent = 3.2;
    cfg.shadow_sigma_db = 1.5;
    cfg.shadow_decorr_m = 20.0;
    cfg.rician_k_db = 0.0;  // weak LOS: removes Rayleigh deep nulls
    cfg.slow_doppler_scale = 0.005;
    cfg.initial_distance_m = 600.0;
    cfg.max_distance_m = 2500.0;
  } else {
    // Rural: milder path loss, slower shadowing, weak LOS (vehicles and
    // terrain still scatter; a strong K would freeze the envelope).
    cfg.path_loss_exponent = 2.3;
    cfg.shadow_sigma_db = 1.2;
    cfg.shadow_decorr_m = 60.0;
    cfg.rician_k_db = 3.0;
    // Open terrain: distant scatterers, slower aspect-angle drift.
    cfg.slow_doppler_scale = 0.003;
    cfg.initial_distance_m = 1200.0;
    cfg.max_distance_m = 6000.0;
  }
  // Relative-distance drift: slow and mean-reverting, so the key-scale
  // variance is dominated by fading rather than by the path-loss trend.
  // V2V gaps wander more than a vehicle-to-RSU distance.
  cfg.distance_sigma_m = cfg.is_v2v() ? 50.0 : 35.0;
  cfg.distance_tau_s = 60.0;
  return cfg;
}

}  // namespace vkey::channel
