#include "channel/lora_phy.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/error.h"
#include "common/metrics.h"

namespace vkey::channel {

LoRaPhy::LoRaPhy(const LoRaParams& p) : params_(p) {
  VKEY_REQUIRE(p.spreading_factor >= 6 && p.spreading_factor <= 12,
               "SF must be in 6..12");
  VKEY_REQUIRE(p.bandwidth_hz > 0, "bandwidth must be positive");
  VKEY_REQUIRE(p.coding_rate_denom >= 5 && p.coding_rate_denom <= 8,
               "CR denominator must be in 5..8");
  VKEY_REQUIRE(p.payload_bytes > 0, "payload must be non-empty");
  VKEY_REQUIRE(p.preamble_symbols >= 6, "preamble too short");

  const double sf = p.spreading_factor;
  const double two_sf = std::pow(2.0, sf);
  symbol_time_ = two_sf / p.bandwidth_hz;
  bit_rate_ = sf * (p.bandwidth_hz / two_sf) * (4.0 / p.coding_rate_denom);

  // Semtech AN1200.13 payload symbol count. Low-data-rate optimization (DE)
  // is mandatory for symbol times > 16 ms (SF11/SF12 at 125 kHz).
  const bool de = symbol_time_ > 16e-3;
  const int ih = p.explicit_header ? 0 : 1;
  const int crc = p.crc_on ? 1 : 0;
  const double numer = 8.0 * p.payload_bytes - 4.0 * sf + 28 + 16.0 * crc -
                       20.0 * ih;
  const double denom = 4.0 * (sf - (de ? 2.0 : 0.0));
  const double ceil_term = std::ceil(std::max(numer, 0.0) / denom);
  payload_symbols_ =
      8 + static_cast<int>(ceil_term * (p.coding_rate_denom - 4 + 4));
  total_symbols_ = payload_symbols_ + p.preamble_symbols + 4.25;
  airtime_ = total_symbols_ * symbol_time_;
  rssi_samples_ = static_cast<int>(std::floor(total_symbols_));
}

void LoRaPhy::account_airtime(const char* label, std::size_t packets) const {
  if (!metrics::enabled() || packets == 0) return;
  auto& reg = metrics::Registry::global();
  const double ms = airtime_ * 1000.0 * static_cast<double>(packets);
  reg.counter("phy.packets").add(packets);
  reg.gauge("phy.airtime_ms").add(ms);
  reg.gauge(std::string("phy.airtime_ms.") + label).add(ms);
}

double LoRaPhy::wavelength() const {
  constexpr double kC = 299792458.0;
  return kC / params_.carrier_hz;
}

LoRaParams LoRaPhy::params_for_bitrate(double target_bps) {
  VKEY_REQUIRE(target_bps > 0, "target bit rate must be positive");
  static const double kBandwidths[] = {15.6e3, 31.25e3, 62.5e3, 125e3};
  LoRaParams best;
  double best_err = std::numeric_limits<double>::infinity();
  for (int sf = 7; sf <= 12; ++sf) {
    for (double bw : kBandwidths) {
      for (int cr = 5; cr <= 8; ++cr) {
        LoRaParams p;
        p.spreading_factor = sf;
        p.bandwidth_hz = bw;
        p.coding_rate_denom = cr;
        const double rb =
            sf * (bw / std::pow(2.0, sf)) * (4.0 / cr);
        const double err = std::fabs(std::log(rb / target_bps));
        if (err < best_err) {
          best_err = err;
          best = p;
        }
      }
    }
  }
  return best;
}

}  // namespace vkey::channel
