// Radio propagation building blocks: path loss, correlated log-normal
// shadowing and small-scale (Rayleigh/Rician) fading with Doppler.
//
// Design notes
// ------------
// * Reciprocity is modeled by construction: there is ONE fading state per
//   link, and both directions sample it. Non-reciprocity in the *measurements*
//   then comes only from the paper's four causes (Sec. II-A): sampling-time
//   offset, hardware imperfection, additive noise and asymmetric interference
//   — the first being dominant for LoRa, exactly as the paper argues.
// * Small-scale fading uses phase-accumulating sum-of-sinusoids rings (Jakes
//   spectrum). A V2V link multiplies two rings (double-mobility /
//   double-Rayleigh model), so fading is faster when both ends move — this is
//   what makes V2V key-generation rates exceed V2I in Fig. 12/13.
// * Shadowing follows Gudmundson's exponentially-correlated model over the
//   distance travelled. Eve's shadowing can be built correlated with the
//   legitimate link's (she follows Alice's route and sees similar large-scale
//   effects, Fig. 16) while her small-scale fading is independent (> lambda/2
//   separation).
#pragma once

#include <complex>
#include <vector>

#include "common/rng.h"

namespace vkey::channel {

/// Free-space/log-distance path loss [dB] at distance d >= 1 m.
double path_loss_db(double distance_m, double exponent, double ref_loss_db);

/// Phase-accumulating sum-of-sinusoids diffuse scatter ring.
///
/// g(t) = (1/sqrt(R)) * sum_r exp(j * phi_r(t)),
/// phi_r advanced by 2*pi*fd*cos(alpha_r)*dt per step, supporting
/// time-varying Doppler fd (vehicle speeds change along the trace).
class SumOfSinusoidsRing {
 public:
  SumOfSinusoidsRing(int rays, vkey::Rng& rng);

  /// Advance all ray phases by `dt` seconds under max Doppler `doppler_hz`
  /// and return the complex gain. For a static endpoint pass doppler 0:
  /// the ring freezes (its gain is a constant unit-power complex number).
  std::complex<double> advance(double dt, double doppler_hz);

  /// Current gain without advancing.
  std::complex<double> current() const;

 private:
  std::vector<double> cos_alpha_;
  std::vector<double> phase_;
};

/// Small-scale complex gain for one link.
///
/// The diffuse field is a two-timescale mixture: a *fast* component at the
/// geometric Doppler (nearby scatterers — this is what decorrelates packet
/// RSSI over LoRa's long airtime, Sec. II-A) and a *slow* component from
/// large distant scatterers whose aspect angle drifts far more slowly
/// (effective Doppler scaled down by `slow_scale`). Each component is a
/// product of two endpoint rings (double-mobility model), so fading speeds
/// up when both ends move. An optional LOS path with Rician factor K is
/// added on top. Every component is link-specific: an observer more than
/// lambda/2 away sees independent realizations of all of them.
struct SmallScaleConfig {
  int rays = 24;
  double rician_k_db = -100.0;  ///< <= -40 selects pure Rayleigh
  double slow_scale = 0.05;     ///< slow-component Doppler scale
  double fast_weight = 0.25;    ///< diffuse power fraction in fast component
};

class SmallScaleFading {
 public:
  SmallScaleFading(const SmallScaleConfig& config, vkey::Rng rng);

  /// Advance by dt under the two endpoint Dopplers (fd = v/c * f0) and the
  /// LOS Doppler (relative radial speed), returning the envelope gain [dB].
  double advance_db(double dt, double fd_a_hz, double fd_b_hz,
                    double fd_los_hz);

 private:
  std::complex<double> diffuse(double dt, double fd_a_hz, double fd_b_hz);

  SmallScaleConfig cfg_;
  SumOfSinusoidsRing fast_a_;
  SumOfSinusoidsRing fast_b_;
  SumOfSinusoidsRing slow_a_;
  SumOfSinusoidsRing slow_b_;
  double k_linear_ = 0.0;  ///< Rician K (linear); 0 for Rayleigh
  double los_phase_ = 0.0;
  vkey::Rng rng_;
};

/// Gudmundson spatially-correlated log-normal shadowing.
///
/// S is a zero-mean Gaussian [dB] with autocorrelation
/// E[S(p)S(p+d)] = sigma^2 * exp(-|d|/decorr).
class ShadowingProcess {
 public:
  ShadowingProcess(double sigma_db, double decorr_m, vkey::Rng rng);

  /// Advance the position by `delta_pos_m` >= 0 metres and return S [dB].
  double advance(double delta_pos_m);

  double current() const { return value_db_; }
  double sigma_db() const { return sigma_db_; }

 private:
  double sigma_db_ = 0.0;
  double decorr_m_ = 0.0;
  double value_db_ = 0.0;
  vkey::Rng rng_;
};

/// A shadowing process correlated with a reference one:
/// S_out = rho * S_ref + sqrt(1-rho^2) * S_own. Used for Eve, who follows
/// Alice's route (highly correlated large-scale, Fig. 16) without sharing the
/// small-scale channel.
class CorrelatedShadowing {
 public:
  /// `rho` in [0,1]: spatial correlation with the reference link.
  CorrelatedShadowing(double rho, double sigma_db, double decorr_m,
                      vkey::Rng rng);

  /// Advance own component and combine with the reference link's current
  /// shadowing value (already advanced by the caller).
  double advance(double delta_pos_m, double reference_value_db);

 private:
  double rho_ = 0.0;
  ShadowingProcess own_;
};

}  // namespace vkey::channel
