// LoRa physical-layer timing model (SX127x-style).
//
// The paper's core difficulty is that LoRa's airtime is long relative to the
// channel coherence time: Rb = SF * (BW / 2^SF) * CR, so at SF12/BW125/CR4-8
// the bit rate is 183 bps and a 16-byte packet stays on air for ~1.5 s.
// This module computes symbol time, bit rate, payload symbol count and total
// airtime from the standard Semtech formulas; the trace generator uses it to
// place every rRSSI register sample on the time axis.
#pragma once

#include <cstddef>

namespace vkey::channel {

/// Radio/packet configuration. Defaults are the paper's evaluation settings
/// (BW = 125 kHz, SF = 12, CR = 4/8, f0 = 434 MHz, 16-byte payload).
struct LoRaParams {
  int spreading_factor = 12;   ///< SF, 6..12
  double bandwidth_hz = 125e3;  ///< BW: 7.8k .. 500k
  int coding_rate_denom = 8;   ///< CR = 4/denom, denom in 5..8
  double carrier_hz = 434e6;   ///< f0
  int preamble_symbols = 8;    ///< programmed preamble length
  int payload_bytes = 16;      ///< MAC payload length
  bool explicit_header = true;
  bool crc_on = true;
};

/// Derived timing quantities for one LoRaParams configuration.
class LoRaPhy {
 public:
  explicit LoRaPhy(const LoRaParams& params);

  const LoRaParams& params() const { return params_; }

  /// Chirp symbol duration: 2^SF / BW [s].
  double symbol_time() const { return symbol_time_; }

  /// Effective bit rate: SF * BW / 2^SF * (4/CR_denom) [bit/s]. Matches the
  /// paper's Rb formula (183 bps for the default configuration).
  double bit_rate() const { return bit_rate_; }

  /// Number of payload symbols (Semtech AN1200.13 formula, including header
  /// and CRC overhead and low-data-rate optimization for SF >= 11).
  int payload_symbols() const { return payload_symbols_; }

  /// Total symbols on air including preamble (+4.25 sync/SFD symbols).
  double total_symbols() const { return total_symbols_; }

  /// Packet time-on-air [s].
  double airtime() const { return airtime_; }

  /// Number of rRSSI register samples a receiver can latch during one packet
  /// (one per symbol, preamble included — the radio's RSSI register updates
  /// continuously while the packet is being received).
  int rssi_samples_per_packet() const { return rssi_samples_; }

  /// Carrier wavelength [m] (69.12 cm at 434 MHz).
  double wavelength() const;

  /// Pick an SF/BW/CR configuration whose bit rate is closest to
  /// `target_bps`, searching SF 7..12, BW {15.6k, 31.25k, 62.5k, 125k} and
  /// CR denominators 5..8. Used by the Fig. 2(a) data-rate sweep.
  static LoRaParams params_for_bitrate(double target_bps);

  /// Observability hook: account `packets` transmissions of this
  /// configuration in the global metrics registry — total packet count and
  /// accumulated on-air milliseconds, plus a per-`label` breakdown
  /// ("phy.airtime_ms.<label>"). Labels distinguish probe traffic from
  /// protocol wire frames.
  void account_airtime(const char* label, std::size_t packets = 1) const;

 private:
  LoRaParams params_;
  double symbol_time_ = 0.0;
  double bit_rate_ = 0.0;
  int payload_symbols_ = 0;
  double total_symbols_ = 0.0;
  double airtime_ = 0.0;
  int rssi_samples_ = 0;
};

}  // namespace vkey::channel
