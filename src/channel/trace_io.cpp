#include "channel/trace_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "common/error.h"

namespace vkey::channel {

namespace {

const char* kHeader = "round,observer,symbol,t_start,rssi_dbm";

const char* observer_name(int idx) {
  switch (idx) {
    case 0: return "bob_rx";
    case 1: return "alice_rx";
    case 2: return "eve_rx_alice_tx";
    case 3: return "eve_rx_bob_tx";
  }
  throw vkey::Error("bad observer index");
}

PacketObservation& observation_of(ProbeRound& round,
                                  const std::string& name) {
  if (name == "bob_rx") return round.bob_rx;
  if (name == "alice_rx") return round.alice_rx;
  if (name == "eve_rx_alice_tx") return round.eve_rx_alice_tx;
  if (name == "eve_rx_bob_tx") return round.eve_rx_bob_tx;
  throw vkey::Error("unknown observer '" + name + "' in trace CSV");
}

}  // namespace

void write_trace_csv(std::ostream& out,
                     const std::vector<ProbeRound>& rounds) {
  // Full round-trip fidelity for the timestamps.
  out.precision(17);
  out << kHeader << "\n";
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    const PacketObservation* obs[] = {
        &rounds[r].bob_rx, &rounds[r].alice_rx, &rounds[r].eve_rx_alice_tx,
        &rounds[r].eve_rx_bob_tx};
    for (int o = 0; o < 4; ++o) {
      for (std::size_t s = 0; s < obs[o]->rrssi.size(); ++s) {
        out << r << ',' << observer_name(o) << ',' << s << ','
            << obs[o]->t_start << ',' << obs[o]->rrssi[s] << "\n";
      }
    }
  }
  VKEY_REQUIRE(out.good(), "trace CSV write failed");
}

void save_trace_csv(const std::string& path,
                    const std::vector<ProbeRound>& rounds) {
  std::ofstream f(path);
  VKEY_REQUIRE(f.good(), "cannot open for writing: " + path);
  write_trace_csv(f, rounds);
}

std::vector<ProbeRound> read_trace_csv(std::istream& in) {
  std::string line;
  VKEY_REQUIRE(static_cast<bool>(std::getline(in, line)),
               "empty trace CSV");
  VKEY_REQUIRE(line == kHeader, "unexpected trace CSV header: " + line);

  std::map<std::size_t, ProbeRound> rounds;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string round_s, observer, symbol_s, t_s, rssi_s;
    const bool ok = static_cast<bool>(std::getline(row, round_s, ',')) &&
                    static_cast<bool>(std::getline(row, observer, ',')) &&
                    static_cast<bool>(std::getline(row, symbol_s, ',')) &&
                    static_cast<bool>(std::getline(row, t_s, ',')) &&
                    static_cast<bool>(std::getline(row, rssi_s));
    VKEY_REQUIRE(ok, "malformed trace CSV at line " +
                         std::to_string(line_no));
    std::size_t round_idx = 0, symbol = 0;
    double t_start = 0.0, rssi = 0.0;
    try {
      round_idx = std::stoul(round_s);
      symbol = std::stoul(symbol_s);
      t_start = std::stod(t_s);
      rssi = std::stod(rssi_s);
    } catch (const std::exception&) {
      throw vkey::Error("non-numeric field in trace CSV at line " +
                        std::to_string(line_no));
    }
    ProbeRound& round = rounds[round_idx];
    PacketObservation& obs = observation_of(round, observer);
    VKEY_REQUIRE(symbol == obs.rrssi.size(),
                 "out-of-order symbol index at line " +
                     std::to_string(line_no));
    if (symbol == 0) obs.t_start = t_start;
    obs.rrssi.push_back(rssi);
  }

  std::vector<ProbeRound> out;
  out.reserve(rounds.size());
  for (auto& [idx, round] : rounds) {
    VKEY_REQUIRE(!round.bob_rx.rrssi.empty() &&
                     !round.alice_rx.rrssi.empty(),
                 "round " + std::to_string(idx) +
                     " is missing legitimate observations");
    round.t_round_start = round.bob_rx.t_start;
    out.push_back(std::move(round));
  }
  return out;
}

std::vector<ProbeRound> load_trace_csv(const std::string& path) {
  std::ifstream f(path);
  VKEY_REQUIRE(f.good(), "cannot open for reading: " + path);
  return read_trace_csv(f);
}

}  // namespace vkey::channel
