#include "channel/fading.h"

#include <cmath>

#include "common/error.h"

namespace vkey::channel {

double path_loss_db(double distance_m, double exponent, double ref_loss_db) {
  VKEY_REQUIRE(exponent > 0.0, "path-loss exponent must be positive");
  const double d = std::max(distance_m, 1.0);
  return ref_loss_db + 10.0 * exponent * std::log10(d);
}

SumOfSinusoidsRing::SumOfSinusoidsRing(int rays, vkey::Rng& rng) {
  VKEY_REQUIRE(rays >= 4, "need at least 4 rays");
  cos_alpha_.resize(static_cast<std::size_t>(rays));
  phase_.resize(static_cast<std::size_t>(rays));
  for (int r = 0; r < rays; ++r) {
    // Random arrival angles (isotropic scattering) and initial phases.
    const double alpha = rng.uniform(0.0, 2.0 * M_PI);
    cos_alpha_[static_cast<std::size_t>(r)] = std::cos(alpha);
    phase_[static_cast<std::size_t>(r)] = rng.uniform(0.0, 2.0 * M_PI);
  }
}

std::complex<double> SumOfSinusoidsRing::advance(double dt,
                                                 double doppler_hz) {
  VKEY_REQUIRE(dt >= 0.0, "dt must be non-negative");
  if (dt > 0.0 && doppler_hz != 0.0) {
    const double w = 2.0 * M_PI * doppler_hz * dt;
    for (std::size_t r = 0; r < phase_.size(); ++r) {
      phase_[r] += w * cos_alpha_[r];
    }
  }
  return current();
}

std::complex<double> SumOfSinusoidsRing::current() const {
  std::complex<double> g(0.0, 0.0);
  for (double p : phase_) g += std::complex<double>(std::cos(p), std::sin(p));
  return g / std::sqrt(static_cast<double>(phase_.size()));
}

SmallScaleFading::SmallScaleFading(const SmallScaleConfig& config,
                                   vkey::Rng rng)
    : cfg_(config),
      fast_a_(config.rays, rng),
      fast_b_(config.rays, rng),
      slow_a_(config.rays, rng),
      slow_b_(config.rays, rng),
      k_linear_(config.rician_k_db <= -40.0
                    ? 0.0
                    : std::pow(10.0, config.rician_k_db / 10.0)),
      rng_(rng) {
  VKEY_REQUIRE(config.fast_weight >= 0.0 && config.fast_weight <= 1.0,
               "fast_weight must be in [0,1]");
  VKEY_REQUIRE(config.slow_scale > 0.0 && config.slow_scale <= 1.0,
               "slow_scale must be in (0,1]");
  los_phase_ = rng_.uniform(0.0, 2.0 * M_PI);
}

std::complex<double> SmallScaleFading::diffuse(double dt, double fd_a_hz,
                                               double fd_b_hz) {
  auto product = [&](SumOfSinusoidsRing& ra, SumOfSinusoidsRing& rb,
                     double fa, double fb) {
    const std::complex<double> ga = ra.advance(dt, fa);
    // A static endpoint degenerates the product model to a single ring.
    std::complex<double> gb(1.0, 0.0);
    if (fb > 0.0) gb = rb.advance(dt, fb);
    return ga * gb;
  };
  const std::complex<double> fast =
      product(fast_a_, fast_b_, fd_a_hz, fd_b_hz);
  const std::complex<double> slow =
      product(slow_a_, slow_b_, fd_a_hz * cfg_.slow_scale,
              fd_b_hz * cfg_.slow_scale);
  return std::sqrt(cfg_.fast_weight) * fast +
         std::sqrt(1.0 - cfg_.fast_weight) * slow;
}

double SmallScaleFading::advance_db(double dt, double fd_a_hz, double fd_b_hz,
                                    double fd_los_hz) {
  std::complex<double> g = diffuse(dt, fd_a_hz, fd_b_hz);
  if (k_linear_ > 0.0) {
    los_phase_ += 2.0 * M_PI * fd_los_hz * dt;
    const std::complex<double> los(std::cos(los_phase_),
                                   std::sin(los_phase_));
    g = std::sqrt(k_linear_ / (k_linear_ + 1.0)) * los +
        std::sqrt(1.0 / (k_linear_ + 1.0)) * g;
  }
  // Envelope power in dB, floored to avoid -inf in deep fades.
  const double p = std::max(std::norm(g), 1e-9);
  return 10.0 * std::log10(p);
}

ShadowingProcess::ShadowingProcess(double sigma_db, double decorr_m,
                                   vkey::Rng rng)
    : sigma_db_(sigma_db), decorr_m_(decorr_m), rng_(rng) {
  VKEY_REQUIRE(sigma_db >= 0.0, "shadow sigma must be non-negative");
  VKEY_REQUIRE(decorr_m > 0.0, "decorrelation distance must be positive");
  value_db_ = sigma_db_ * rng_.gaussian();
}

double ShadowingProcess::advance(double delta_pos_m) {
  VKEY_REQUIRE(delta_pos_m >= 0.0, "position must advance");
  if (delta_pos_m > 0.0 && sigma_db_ > 0.0) {
    const double rho = std::exp(-delta_pos_m / decorr_m_);
    value_db_ = rho * value_db_ +
                std::sqrt(std::max(0.0, 1.0 - rho * rho)) * sigma_db_ *
                    rng_.gaussian();
  }
  return value_db_;
}

CorrelatedShadowing::CorrelatedShadowing(double rho, double sigma_db,
                                         double decorr_m, vkey::Rng rng)
    : rho_(rho), own_(sigma_db, decorr_m, rng) {
  VKEY_REQUIRE(rho >= 0.0 && rho <= 1.0, "rho must be in [0,1]");
}

double CorrelatedShadowing::advance(double delta_pos_m,
                                    double reference_value_db) {
  const double own = own_.advance(delta_pos_m);
  return rho_ * reference_value_db +
         std::sqrt(std::max(0.0, 1.0 - rho_ * rho_)) * own;
}

}  // namespace vkey::channel
