// IoV scenario presets: the four environments of the paper's evaluation.
//
// V2V/V2I x urban/rural differ in path-loss exponent, shadowing strength and
// decorrelation distance, multipath richness (Rician K: rural drives have a
// LOS component, urban is NLOS/Rayleigh) and which endpoints move. These
// parameters are standard values from the vehicular channel-modeling
// literature the paper cites (Rayleigh fast fading [12], log-normal shadow
// fading [13]).
#pragma once

#include <cstdint>
#include <string>

namespace vkey::channel {

enum class ScenarioKind : std::uint8_t {
  kV2IUrban,
  kV2IRural,
  kV2VUrban,
  kV2VRural,
};

/// Human-readable name ("V2I-Urban", ...).
std::string to_string(ScenarioKind kind);

/// All four, in the paper's reporting order.
inline constexpr ScenarioKind kAllScenarios[] = {
    ScenarioKind::kV2IUrban, ScenarioKind::kV2IRural,
    ScenarioKind::kV2VUrban, ScenarioKind::kV2VRural};

struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kV2VUrban;

  // --- mobility ---
  double speed_a_kmh = 50.0;  ///< Alice (always a vehicle)
  double speed_b_kmh = 50.0;  ///< Bob (0 for V2I infrastructure)
  double speed_jitter_kmh = 5.0;  ///< slow random speed variation amplitude
  double initial_distance_m = 800.0;
  double min_distance_m = 100.0;
  double max_distance_m = 4000.0;
  /// The separation is mean-reverting around initial_distance_m (two
  /// vehicles holding a varying gap / a vehicle circling an RSU):
  /// stationary std-dev and relaxation time of the gap.
  double distance_sigma_m = 40.0;
  double distance_tau_s = 60.0;

  // --- large-scale propagation ---
  double path_loss_exponent = 3.2;
  /// PL at d0 = 1 m: free-space 20*log10(4*pi*d0/lambda) = 25.2 dB at
  /// 434 MHz (lambda = 69.12 cm).
  double ref_path_loss_db = 25.2;
  double shadow_sigma_db = 6.0;     ///< log-normal shadowing std-dev
  double shadow_decorr_m = 30.0;    ///< Gudmundson decorrelation distance

  // --- small-scale propagation ---
  /// Rician K-factor [dB]; -infinity (use <= -40) means pure Rayleigh.
  double rician_k_db = -100.0;
  /// Number of sum-of-sinusoids rays per mobile end.
  int sos_rays = 24;
  /// The diffuse field is split into a fast component at the geometric
  /// Doppler v/lambda (drives the packet-airtime decorrelation of Fig. 2)
  /// and a slow component from large, distant scatterers whose aspect angle
  /// changes much more slowly (effective Doppler = slow_doppler_scale *
  /// v/lambda). The slow component is link-specific — independent for any
  /// observer more than lambda/2 away — and carries the reciprocal entropy
  /// Vehicle-Key hashes into keys.
  double slow_doppler_scale = 0.005;
  /// Fraction of diffuse power in the fast component. Kept small: because
  /// envelope-power correlation is the squared field correlation, even a
  /// 10% fast-power share caps the reciprocal-window correlation near 0.8.
  double fast_fading_weight = 0.005;

  // --- non-reciprocity sources (Sec. II-A items 3 and 4) ---
  /// Asymmetric interference power std-dev [dB] (differs per direction).
  double interference_asym_sigma_db = 0.4;

  bool is_v2v() const {
    return kind == ScenarioKind::kV2VUrban || kind == ScenarioKind::kV2VRural;
  }
  bool is_urban() const {
    return kind == ScenarioKind::kV2IUrban || kind == ScenarioKind::kV2VUrban;
  }
};

/// Preset for one of the four scenarios with the given vehicle speed
/// (applied to Alice, and to Bob too when V2V).
ScenarioConfig make_scenario(ScenarioKind kind, double speed_kmh = 50.0);

}  // namespace vkey::channel
