// LoRa transceiver device models.
//
// The paper evaluates three radios (Table I): Arduino + Dragino LoRa Shield
// (SX1278), MultiTech xDot (SX1272) and MultiTech mDot (SX1272). Hardware
// imperfection is one of the four sources of measurement non-reciprocity
// (Sec. II-A), so each device model carries a fixed per-unit gain offset, a
// noise figure contribution and the RSSI register quantization step.
#pragma once

#include <string>

namespace vkey::channel {

struct DeviceModel {
  std::string name;
  /// Systematic RX gain offset [dB] relative to nominal (per-unit factory
  /// spread; constant over a trace, drawn once per device instance).
  double gain_offset_sigma_db = 1.0;
  /// Additional thermal/front-end measurement noise on each rRSSI sample
  /// [dB, std-dev].
  double rssi_noise_sigma_db = 0.8;
  /// RSSI register granularity [dB] (SX127x reports integer dB).
  double rssi_quant_step_db = 1.0;
  /// Receiver noise floor [dBm]: the RSSI register reports
  /// 10*log10(P_signal + P_floor), which soft-clamps deep fades — the
  /// measured dB series has no Rayleigh-null tails below this level.
  double noise_floor_dbm = -112.0;
  /// Turnaround / operation delay between RX completion and the response
  /// transmission [s] ("hardware operation delay is in milliseconds").
  double turnaround_delay_s = 0.004;
  /// Transmit power [dBm].
  double tx_power_dbm = 14.0;
  /// Receiver gain drift over a reception: AGC/PLL/temperature ramping adds
  /// a per-packet random offset whose std grows superlinearly with airtime
  /// (a drift-rate random walk: sigma = coeff * airtime^1.5)
  /// [dB / s^1.5]. Negligible for sub-second packets; at the 10-second
  /// airtimes of the lowest LoRa rates it adds dBs of receiver-specific
  /// (hence non-reciprocal) error.
  double gain_drift_db_per_s15 = 0.06;
};

/// The three radios from Table I.
DeviceModel dragino_lora_shield();
DeviceModel multitech_xdot();
DeviceModel multitech_mdot();

}  // namespace vkey::channel
