// Probe-exchange trace generation: the synthetic stand-in for the paper's
// 20+ hours of real-world driving data.
//
// One ProbeRound reproduces the paper's probing protocol:
//   1. Alice transmits a probe packet. While it is on air, Bob's radio
//      latches one rRSSI register sample per symbol (the instantaneous
//      "register RSSI" of Sec. II-C). Eve, following Alice, overhears the
//      same transmission through her own Eve-Alice channel.
//   2. After Bob's turnaround delay (milliseconds), Bob transmits the
//      response; Alice samples her rRSSIs, and Eve overhears through the
//      Eve-Bob channel.
// Because the packet airtime at SF12 is ~1.5 s while the coherence time at
// 50 km/h is ~20 ms, the two parties' packet-averaged RSSIs decorrelate, but
// the boundary samples (end of Bob's window, start of Alice's window, only a
// turnaround delay apart) remain inside the coherence time — exactly the
// asymmetry Vehicle-Key exploits.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/device.h"
#include "channel/fading.h"
#include "channel/lora_phy.h"
#include "channel/mobility.h"
#include "channel/scenario.h"
#include "common/rng.h"

namespace vkey::channel {

/// rRSSI observations of one received packet.
struct PacketObservation {
  double t_start = 0.0;              ///< reception start [s]
  double t_end = 0.0;                ///< reception end [s]
  std::vector<double> rrssi;         ///< one register RSSI per symbol [dBm]

  /// Packet RSSI: the average the paper calls pRSSI.
  double prssi() const;
};

/// All observations of one probe/response exchange.
struct ProbeRound {
  double t_round_start = 0.0;
  PacketObservation bob_rx;          ///< Bob's view of Alice's probe
  PacketObservation alice_rx;        ///< Alice's view of Bob's response
  PacketObservation eve_rx_alice_tx;  ///< Eve overhears the probe
  PacketObservation eve_rx_bob_tx;   ///< Eve overhears the response
  double distance_m = 0.0;           ///< Alice-Bob separation at round start
};

struct TraceConfig {
  ScenarioConfig scenario;
  LoRaParams phy;
  DeviceModel device_alice = dragino_lora_shield();
  DeviceModel device_bob = dragino_lora_shield();
  DeviceModel device_eve = dragino_lora_shield();
  /// Idle gap between the end of one exchange and the next probe [s].
  double probe_interval_s = 0.05;
  /// Eve's lateral offset from Alice [m]; sets her shadowing correlation
  /// with the legitimate link (exp(-offset/decorr)) and her Eve-Alice
  /// distance. > lambda/2, so her small-scale fading is independent.
  double eve_offset_m = 15.0;
  std::uint64_t seed = 1;
};

/// Deterministic generator of probe rounds for one scenario/configuration.
class TraceGenerator {
 public:
  explicit TraceGenerator(const TraceConfig& config);
  ~TraceGenerator();
  TraceGenerator(TraceGenerator&&) noexcept;
  TraceGenerator& operator=(TraceGenerator&&) noexcept;

  /// Produce the next probe exchange (advances simulated time).
  ProbeRound next_round();

  /// Produce `n` consecutive rounds.
  std::vector<ProbeRound> generate(std::size_t n);

  /// Wall-clock duration of one complete exchange including the probe
  /// interval [s] — the denominator of every key-generation-rate figure.
  double round_duration() const;

  const LoRaPhy& phy() const;

  /// Doppler-derived coherence time at the configured scenario speed
  /// (T_c ~ 0.423 / f_d), for diagnostics and the Sec. II analysis bench.
  double coherence_time_s() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vkey::channel
