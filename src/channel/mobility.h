// Vehicle mobility processes.
//
// Key generation only cares about two aspects of the geometry: the
// Alice-Bob separation d(t) (drives path loss and shadowing decorrelation)
// and each endpoint's speed (drives the Doppler spread of small-scale
// fading). Both are modeled as smooth random processes: speeds are
// mean-reverting around the scenario speed, and the separation performs a
// bounded random walk driven by the relative radial speed, reflecting at
// [min_distance, max_distance] — matching the paper's "travel randomly, the
// distance varies from hundreds of meters to several kilometers".
#pragma once

#include "channel/scenario.h"
#include "common/rng.h"

namespace vkey::channel {

/// Mean-reverting (Ornstein-Uhlenbeck) speed process around a base speed.
class SpeedProcess {
 public:
  /// `base_kmh` target speed, `jitter_kmh` std-dev of variation,
  /// `tau_s` mean-reversion time constant.
  SpeedProcess(double base_kmh, double jitter_kmh, double tau_s,
               vkey::Rng rng);

  /// Advance to absolute time `t` (monotonically non-decreasing calls) and
  /// return the speed [m/s]. Speeds are clamped at >= 0.
  double at(double t);

  double base_mps() const { return base_mps_; }

 private:
  double base_mps_ = 0.0;
  double sigma_mps_ = 0.0;
  double tau_s_ = 0.0;
  double value_mps_ = 0.0;
  double last_t_ = 0.0;
  vkey::Rng rng_;
};

/// Mean-reverting (Ornstein-Uhlenbeck) Alice-Bob separation around the
/// scenario's nominal gap, clamped to [min_distance, max_distance].
class DistanceProcess {
 public:
  DistanceProcess(const ScenarioConfig& cfg, vkey::Rng rng);

  /// Advance to absolute time `t` (monotone) and return separation [m].
  double at(double t);

  /// Cumulative absolute distance travelled by the pair relative to the
  /// environment [m] — used as the spatial axis for shadowing decorrelation.
  double travelled() const { return travelled_m_; }

  /// Current relative radial speed [m/s] (rate of change of separation);
  /// drives the LOS Doppler of the link.
  double radial_speed() const { return radial_speed_mps_; }

 private:
  double min_m_ = 0.0;
  double max_m_ = 0.0;
  double nominal_m_ = 0.0;
  double sigma_m_ = 0.0;
  double tau_s_ = 0.0;
  double distance_m_ = 0.0;
  double radial_speed_mps_ = 0.0;
  double env_speed_mps_ = 0.0;  ///< ground speed vs the scatter environment
  double travelled_m_ = 0.0;
  double last_t_ = 0.0;
  vkey::Rng rng_;
};

}  // namespace vkey::channel
