#include "channel/mobility.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vkey::channel {

SpeedProcess::SpeedProcess(double base_kmh, double jitter_kmh, double tau_s,
                           vkey::Rng rng)
    : base_mps_(base_kmh / 3.6),
      sigma_mps_(jitter_kmh / 3.6),
      tau_s_(tau_s),
      value_mps_(base_kmh / 3.6),
      rng_(rng) {
  VKEY_REQUIRE(base_kmh >= 0.0, "speed must be non-negative");
  VKEY_REQUIRE(tau_s > 0.0, "tau must be positive");
}

double SpeedProcess::at(double t) {
  VKEY_REQUIRE(t >= last_t_, "SpeedProcess sampled backwards in time");
  const double dt = t - last_t_;
  last_t_ = t;
  if (dt > 0.0 && sigma_mps_ > 0.0) {
    const double rho = std::exp(-dt / tau_s_);
    value_mps_ = base_mps_ + rho * (value_mps_ - base_mps_) +
                 std::sqrt(std::max(0.0, 1.0 - rho * rho)) * sigma_mps_ *
                     rng_.gaussian();
  }
  return std::max(0.0, value_mps_);
}

DistanceProcess::DistanceProcess(const ScenarioConfig& cfg, vkey::Rng rng)
    : min_m_(cfg.min_distance_m),
      max_m_(cfg.max_distance_m),
      nominal_m_(cfg.initial_distance_m),
      sigma_m_(cfg.distance_sigma_m),
      tau_s_(cfg.distance_tau_s),
      distance_m_(cfg.initial_distance_m),
      env_speed_mps_((cfg.speed_a_kmh + cfg.speed_b_kmh) / 3.6 / 2.0),
      rng_(rng) {
  VKEY_REQUIRE(min_m_ > 0.0 && max_m_ > min_m_, "bad distance bounds");
  VKEY_REQUIRE(distance_m_ >= min_m_ && distance_m_ <= max_m_,
               "initial distance outside bounds");
  VKEY_REQUIRE(sigma_m_ >= 0.0 && tau_s_ > 0.0, "bad OU parameters");
}

double DistanceProcess::at(double t) {
  VKEY_REQUIRE(t >= last_t_, "DistanceProcess sampled backwards in time");
  const double dt = t - last_t_;
  last_t_ = t;
  if (dt <= 0.0) return distance_m_;

  // Smooth second-order gap dynamics: the radial speed is a mean-reverting
  // process (so the instantaneous Doppler is physically bounded and
  // continuous) with a weak spring pulling the gap back to its nominal
  // value. A direct OU step on the position would give the gap a
  // white-noise derivative — an unbounded instantaneous radial speed that
  // would wreck the LOS Doppler.
  if (sigma_m_ > 0.0) {
    constexpr double kSpeedTau = 20.0;  // radial-speed relaxation [s]
    // Stationary radial-speed std chosen so the gap wanders with roughly
    // the configured distance_sigma over its relaxation time.
    const double v_sigma = sigma_m_ / tau_s_ * 2.0;
    const double rho = std::exp(-dt / kSpeedTau);
    radial_speed_mps_ = rho * radial_speed_mps_ +
                        std::sqrt(std::max(0.0, 1.0 - rho * rho)) * v_sigma *
                            rng_.gaussian();
    // Weak spring toward the nominal gap.
    radial_speed_mps_ -= (distance_m_ - nominal_m_) / (tau_s_ * tau_s_) * dt;
    distance_m_ += radial_speed_mps_ * dt;
  }
  if (distance_m_ < min_m_ || distance_m_ > max_m_) {
    distance_m_ = std::clamp(distance_m_, min_m_, max_m_);
    radial_speed_mps_ = -radial_speed_mps_;  // bounce off the bound
  }

  travelled_m_ += env_speed_mps_ * dt;
  return distance_m_;
}

}  // namespace vkey::channel
