// Trace (de)serialization: CSV export/import of probe-round observations.
//
// Lets researchers run the Vehicle-Key pipeline on *real* register-RSSI
// captures (the paper's setup) instead of the simulator: record per-symbol
// rRSSI on actual SX127x hardware, dump to this CSV schema, and feed it to
// KeyGenPipeline via dataset extraction. Also used to archive simulated
// traces for exact reproduction across machines.
//
// Schema (one row per register sample):
//   round,observer,symbol,t_start,rssi_dbm
// where observer is one of: bob_rx, alice_rx, eve_rx_alice_tx,
// eve_rx_bob_tx. Rows must be grouped by round (ascending); symbol indexes
// within the packet.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "channel/trace.h"

namespace vkey::channel {

/// Write rounds to a CSV stream/file.
void write_trace_csv(std::ostream& out,
                     const std::vector<ProbeRound>& rounds);
void save_trace_csv(const std::string& path,
                    const std::vector<ProbeRound>& rounds);

/// Parse a CSV stream/file produced by write_trace_csv (or by a hardware
/// capture tool following the same schema). Throws vkey::Error on malformed
/// input; rounds with missing observers are rejected.
std::vector<ProbeRound> read_trace_csv(std::istream& in);
std::vector<ProbeRound> load_trace_csv(const std::string& path);

}  // namespace vkey::channel
