#include "channel/trace.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace vkey::channel {

namespace {
constexpr double kSpeedOfLight = 299792458.0;

/// Quantize an RSSI reading to the register step and clamp to the SX127x
/// reporting range.
double quantize_rssi(double rssi_dbm, double step_db) {
  const double q = std::round(rssi_dbm / step_db) * step_db;
  return std::clamp(q, -137.0, 0.0);
}
}  // namespace

double PacketObservation::prssi() const {
  return vkey::stats::mean(rrssi);
}

struct TraceGenerator::Impl {
  TraceConfig cfg;
  LoRaPhy phy;

  SpeedProcess speed_a;
  SpeedProcess speed_b;
  DistanceProcess distance;

  SmallScaleFading fade_ab;   // the reciprocal Alice-Bob channel
  SmallScaleFading fade_ea;   // Eve-Alice channel
  SmallScaleFading fade_eb;   // Eve-Bob channel
  ShadowingProcess shadow_ab;
  CorrelatedShadowing shadow_ea;
  CorrelatedShadowing shadow_eb;

  // Per-receiver slowly-varying interference offsets (asymmetric between
  // directions: Sec. II-A cause 4).
  double interf_alice = 0.0;
  double interf_bob = 0.0;
  double interf_eve = 0.0;

  // Fixed per-unit hardware gain offsets (cause 2).
  double hw_alice;
  double hw_bob;
  double hw_eve;

  vkey::Rng rng_noise;
  vkey::Rng rng_interf;

  double now = 0.0;
  double last_fade_t_ab = 0.0;
  double last_fade_t_ea = 0.0;
  double last_fade_t_eb = 0.0;
  double last_shadow_pos = 0.0;

  explicit Impl(const TraceConfig& c)
      : cfg(c),
        phy(c.phy),
        speed_a(c.scenario.speed_a_kmh, c.scenario.speed_jitter_kmh, 30.0,
                vkey::Rng(vkey::hash_combine64(c.seed, 0x01))),
        speed_b(c.scenario.speed_b_kmh,
                c.scenario.speed_b_kmh > 0 ? c.scenario.speed_jitter_kmh : 0.0,
                30.0, vkey::Rng(vkey::hash_combine64(c.seed, 0x02))),
        distance(c.scenario, vkey::Rng(vkey::hash_combine64(c.seed, 0x03))),
        fade_ab(SmallScaleConfig{c.scenario.sos_rays, c.scenario.rician_k_db,
                                 c.scenario.slow_doppler_scale,
                                 c.scenario.fast_fading_weight},
                vkey::Rng(vkey::hash_combine64(c.seed, 0x04))),
        fade_ea(SmallScaleConfig{c.scenario.sos_rays, c.scenario.rician_k_db,
                                 c.scenario.slow_doppler_scale,
                                 c.scenario.fast_fading_weight},
                vkey::Rng(vkey::hash_combine64(c.seed, 0x05))),
        fade_eb(SmallScaleConfig{c.scenario.sos_rays, c.scenario.rician_k_db,
                                 c.scenario.slow_doppler_scale,
                                 c.scenario.fast_fading_weight},
                vkey::Rng(vkey::hash_combine64(c.seed, 0x06))),
        shadow_ab(c.scenario.shadow_sigma_db, c.scenario.shadow_decorr_m,
                  vkey::Rng(vkey::hash_combine64(c.seed, 0x07))),
        shadow_ea(std::exp(-c.eve_offset_m / c.scenario.shadow_decorr_m),
                  c.scenario.shadow_sigma_db, c.scenario.shadow_decorr_m,
                  vkey::Rng(vkey::hash_combine64(c.seed, 0x08))),
        shadow_eb(std::exp(-c.eve_offset_m / c.scenario.shadow_decorr_m),
                  c.scenario.shadow_sigma_db, c.scenario.shadow_decorr_m,
                  vkey::Rng(vkey::hash_combine64(c.seed, 0x09))),
        rng_noise(vkey::hash_combine64(c.seed, 0x0a)),
        rng_interf(vkey::hash_combine64(c.seed, 0x0b)) {
    vkey::Rng hw_rng(vkey::hash_combine64(c.seed, 0x0c));
    hw_alice = hw_rng.gaussian(0.0, c.device_alice.gain_offset_sigma_db);
    hw_bob = hw_rng.gaussian(0.0, c.device_bob.gain_offset_sigma_db);
    hw_eve = hw_rng.gaussian(0.0, c.device_eve.gain_offset_sigma_db);
  }

  double doppler_hz(double speed_mps) const {
    return speed_mps / kSpeedOfLight * cfg.phy.carrier_hz;
  }

  /// Advance the slowly varying interference offsets once per round.
  void advance_interference() {
    const double s = cfg.scenario.interference_asym_sigma_db;
    if (s <= 0.0) return;
    constexpr double kRho = 0.9;  // round-to-round correlation
    const double w = std::sqrt(1.0 - kRho * kRho) * s;
    interf_alice = kRho * interf_alice + w * rng_interf.gaussian();
    interf_bob = kRho * interf_bob + w * rng_interf.gaussian();
    interf_eve = kRho * interf_eve + w * rng_interf.gaussian();
  }

  enum class Link { kAliceBob, kEveAlice, kEveBob };

  /// One receiver of a transmission window.
  struct Listener {
    Link link;
    const DeviceModel* rx_dev;
    double offset_db;  ///< rx hardware gain offset + current interference
    PacketObservation* out;
  };

  /// Sample one transmission window of `n_sym` symbols starting at `t0` for
  /// all listeners simultaneously. Geometry (speeds, separation, shadowing
  /// position) advances exactly once per symbol instant; each link's fading
  /// process advances by its own elapsed time, so the same window can be
  /// observed through several statistically distinct links.
  void transmit_phase(double t0, double tx_power_dbm,
                      std::initializer_list<Listener> listeners) {
    const int n_sym = phy.rssi_samples_per_packet();
    const double tsym = phy.symbol_time();
    // Per-packet receiver gain drift (see DeviceModel::gain_drift...).
    std::vector<double> drift;
    drift.reserve(listeners.size());
    for (const Listener& l : listeners) {
      l.out->t_start = t0;
      l.out->t_end = t0 + phy.airtime();
      l.out->rrssi.clear();
      l.out->rrssi.reserve(static_cast<std::size_t>(n_sym));
      drift.push_back(rng_noise.gaussian(
          0.0, l.rx_dev->gain_drift_db_per_s15 *
                   std::pow(phy.airtime(), 1.5)));
    }

    for (int i = 0; i < n_sym; ++i) {
      const double t = t0 + (i + 0.5) * tsym;
      const double va = speed_a.at(t);
      const double vb = speed_b.at(t);
      const double d_ab = distance.at(t);
      const double pos = distance.travelled();
      const double dpos = std::max(0.0, pos - last_shadow_pos);
      last_shadow_pos = pos;

      const double fd_a = doppler_hz(va);
      const double fd_b = doppler_hz(vb);
      // The LOS beat against the diffuse field drifts with the dominant
      // (slow) aspect-angle dynamics, like the slow scatter rings.
      const double fd_los = doppler_hz(std::fabs(distance.radial_speed())) *
                            cfg.scenario.slow_doppler_scale * 10.0;

      // The legitimate link's shadowing advances at every sample instant;
      // Eve's processes blend their own component with it.
      const double s_ab = shadow_ab.advance(dpos);
      const double s_ea = shadow_ea.advance(dpos, s_ab);
      const double s_eb = shadow_eb.advance(dpos, s_ab);

      std::size_t listener_idx = 0;
      for (const Listener& l : listeners) {
        double gain_db = drift[listener_idx++];
        switch (l.link) {
          case Link::kAliceBob: {
            const double dt = std::max(0.0, t - last_fade_t_ab);
            last_fade_t_ab = t;
            gain_db += -path_loss_db(d_ab, cfg.scenario.path_loss_exponent,
                                     cfg.scenario.ref_path_loss_db) +
                       s_ab + fade_ab.advance_db(dt, fd_a, fd_b, fd_los);
            break;
          }
          case Link::kEveAlice: {
            // Eve trails Alice at a fixed small offset: short, stable link.
            const double dt = std::max(0.0, t - last_fade_t_ea);
            last_fade_t_ea = t;
            gain_db += -path_loss_db(cfg.eve_offset_m,
                                     cfg.scenario.path_loss_exponent,
                                    cfg.scenario.ref_path_loss_db) +
                      s_ea + fade_ea.advance_db(dt, fd_a, 0.0, 0.0);
            break;
          }
          case Link::kEveBob: {
            // Eve-Bob separation tracks the Alice-Bob separation (she
            // follows Alice's route), offset laterally.
            const double dt = std::max(0.0, t - last_fade_t_eb);
            last_fade_t_eb = t;
            const double d_eb = std::hypot(d_ab, cfg.eve_offset_m);
            gain_db += -path_loss_db(d_eb, cfg.scenario.path_loss_exponent,
                                     cfg.scenario.ref_path_loss_db) +
                       s_eb + fade_eb.advance_db(dt, fd_a, fd_b, fd_los);
            break;
          }
        }
        const double noise =
            rng_noise.gaussian(0.0, l.rx_dev->rssi_noise_sigma_db);
        const double rssi_signal = tx_power_dbm + gain_db + noise + l.offset_db;
        // The register reports signal + thermal floor power: deep fades are
        // soft-clamped at the receiver noise floor.
        const double rssi = 10.0 * std::log10(
            std::pow(10.0, rssi_signal / 10.0) +
            std::pow(10.0, l.rx_dev->noise_floor_dbm / 10.0));
        l.out->rrssi.push_back(
            quantize_rssi(rssi, l.rx_dev->rssi_quant_step_db));
      }
    }
  }

  ProbeRound next_round() {
    advance_interference();
    ProbeRound round;
    round.t_round_start = now;
    round.distance_m = distance.at(now);

    const double airtime = phy.airtime();

    // Phase 1: Alice transmits; Bob and Eve listen.
    const double t1 = now;
    transmit_phase(
        t1, cfg.device_alice.tx_power_dbm,
        {Listener{Link::kAliceBob, &cfg.device_bob, hw_bob + interf_bob,
                  &round.bob_rx},
         Listener{Link::kEveAlice, &cfg.device_eve, hw_eve + interf_eve,
                  &round.eve_rx_alice_tx}});

    // Phase 2: Bob turns around and responds; Alice and Eve listen.
    const double t2 = t1 + airtime + cfg.device_bob.turnaround_delay_s;
    transmit_phase(
        t2, cfg.device_bob.tx_power_dbm,
        {Listener{Link::kAliceBob, &cfg.device_alice,
                  hw_alice + interf_alice, &round.alice_rx},
         Listener{Link::kEveBob, &cfg.device_eve, hw_eve + interf_eve,
                  &round.eve_rx_bob_tx}});

    now = t2 + airtime + cfg.probe_interval_s;
    // One probe exchange = two packets on the air (probe + response).
    phy.account_airtime("probe", 2);
    return round;
  }
};

TraceGenerator::TraceGenerator(const TraceConfig& config)
    : impl_(std::make_unique<Impl>(config)) {
  VKEY_REQUIRE(config.probe_interval_s >= 0.0,
               "probe interval must be non-negative");
  VKEY_REQUIRE(config.eve_offset_m > 0.0, "Eve offset must be positive");
}

TraceGenerator::~TraceGenerator() = default;
TraceGenerator::TraceGenerator(TraceGenerator&&) noexcept = default;
TraceGenerator& TraceGenerator::operator=(TraceGenerator&&) noexcept =
    default;

ProbeRound TraceGenerator::next_round() { return impl_->next_round(); }

std::vector<ProbeRound> TraceGenerator::generate(std::size_t n) {
  std::vector<ProbeRound> rounds;
  rounds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rounds.push_back(impl_->next_round());
  return rounds;
}

double TraceGenerator::round_duration() const {
  return 2.0 * impl_->phy.airtime() +
         impl_->cfg.device_bob.turnaround_delay_s +
         impl_->cfg.probe_interval_s;
}

const LoRaPhy& TraceGenerator::phy() const { return impl_->phy; }

double TraceGenerator::coherence_time_s() const {
  const double va = impl_->cfg.scenario.speed_a_kmh / 3.6;
  const double vb = impl_->cfg.scenario.speed_b_kmh / 3.6;
  const double v = std::max(std::fabs(va - vb), std::max(va, vb) * 0.5);
  const double fd = impl_->doppler_hz(std::max(v, 0.1));
  return 0.423 / fd;
}

}  // namespace vkey::channel
