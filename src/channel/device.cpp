#include "channel/device.h"

namespace vkey::channel {

DeviceModel dragino_lora_shield() {
  DeviceModel d;
  d.name = "Dragino LoRa Shield";
  d.gain_offset_sigma_db = 1.0;
  d.rssi_noise_sigma_db = 0.4;
  d.rssi_quant_step_db = 1.0;
  d.turnaround_delay_s = 0.006;  // AVR ATmega328P: slowest MCU of the three
  d.tx_power_dbm = 14.0;
  return d;
}

DeviceModel multitech_xdot() {
  DeviceModel d;
  d.name = "MultiTech xDot";
  d.gain_offset_sigma_db = 1.2;
  d.rssi_noise_sigma_db = 0.45;
  d.rssi_quant_step_db = 1.0;
  d.turnaround_delay_s = 0.004;
  d.tx_power_dbm = 14.0;
  return d;
}

DeviceModel multitech_mdot() {
  DeviceModel d;
  d.name = "MultiTech mDot";
  d.gain_offset_sigma_db = 1.2;
  d.rssi_noise_sigma_db = 0.45;
  d.rssi_quant_step_db = 1.0;
  d.turnaround_delay_s = 0.004;
  d.tx_power_dbm = 14.0;
  return d;
}

}  // namespace vkey::channel
