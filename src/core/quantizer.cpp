#include "core/quantizer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vkey::core {

MultiBitQuantizer::MultiBitQuantizer(const QuantizerConfig& config)
    : cfg_(config) {
  VKEY_REQUIRE(cfg_.bits_per_sample >= 1 && cfg_.bits_per_sample <= 4,
               "bits per sample must be in 1..4");
  VKEY_REQUIRE(cfg_.block_size >= 4, "block size must be >= 4");
  VKEY_REQUIRE(cfg_.guard_band_ratio >= 0.0 && cfg_.guard_band_ratio < 1.0,
               "guard band ratio must be in [0,1)");
}

std::vector<std::uint8_t> MultiBitQuantizer::gray_code(std::size_t level,
                                                       int bits) {
  const std::size_t gray = level ^ (level >> 1);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((gray >> (bits - 1 - i)) & 1u);
  }
  return out;
}

namespace {

/// Quantile thresholds splitting `sorted` into `levels` equal-mass bins
/// (levels-1 thresholds).
std::vector<double> quantile_thresholds(std::vector<double> sorted,
                                        std::size_t levels) {
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> th(levels - 1);
  const std::size_t n = sorted.size();
  for (std::size_t k = 1; k < levels; ++k) {
    const double pos = static_cast<double>(k) * static_cast<double>(n) /
                       static_cast<double>(levels);
    const auto idx = static_cast<std::size_t>(pos);
    th[k - 1] = sorted[std::min(idx, n - 1)];
  }
  return th;
}

std::size_t level_of(double v, const std::vector<double>& th) {
  std::size_t level = 0;
  while (level < th.size() && v >= th[level]) ++level;
  return level;
}

}  // namespace

QuantizationResult MultiBitQuantizer::quantize(
    std::span<const double> values) const {
  VKEY_REQUIRE(values.size() >= cfg_.block_size,
               "need at least one full block");
  const std::size_t levels = 1u << cfg_.bits_per_sample;
  QuantizationResult out;

  std::size_t start = 0;
  while (start < values.size()) {
    std::size_t len = std::min(cfg_.block_size, values.size() - start);
    // Merge a short trailing block into this one.
    const std::size_t remaining = values.size() - start - len;
    if (remaining > 0 && remaining < cfg_.block_size / 2) {
      len += remaining;
    }
    std::vector<double> block(values.begin() + static_cast<std::ptrdiff_t>(start),
                              values.begin() +
                                  static_cast<std::ptrdiff_t>(start + len));
    const auto th = quantile_thresholds(block, levels);

    // Guard band half-width: alpha * mean adjacent-threshold gap / 2.
    double guard = 0.0;
    if (cfg_.guard_band_ratio > 0.0 && th.size() >= 1) {
      double span_est;
      if (th.size() >= 2) {
        span_est = (th.back() - th.front()) /
                   static_cast<double>(th.size() - 1);
      } else {
        const auto [mn, mx] = std::minmax_element(block.begin(), block.end());
        span_est = (*mx - *mn) / 2.0;
      }
      guard = cfg_.guard_band_ratio * span_est / 2.0;
    }

    for (std::size_t i = 0; i < len; ++i) {
      const double v = block[i];
      if (guard > 0.0) {
        bool in_guard = false;
        for (double t : th) {
          if (std::fabs(v - t) <= guard) {
            in_guard = true;
            break;
          }
        }
        if (in_guard) continue;
      }
      const std::size_t level = level_of(v, th);
      for (std::uint8_t b : gray_code(level, cfg_.bits_per_sample)) {
        out.bits.push_back(b != 0);
      }
      out.kept.push_back(start + i);
    }
    start += len;
  }
  return out;
}

BitVec MultiBitQuantizer::quantize_at(
    std::span<const double> values,
    std::span<const std::size_t> indices) const {
  VKEY_REQUIRE(!indices.empty(), "no indices to quantize");
  const std::size_t levels = 1u << cfg_.bits_per_sample;
  BitVec out;

  std::size_t start = 0;
  while (start < indices.size()) {
    std::size_t len = std::min(cfg_.block_size, indices.size() - start);
    const std::size_t remaining = indices.size() - start - len;
    if (remaining > 0 && remaining < cfg_.block_size / 2) len += remaining;

    std::vector<double> block(len);
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t idx = indices[start + i];
      VKEY_REQUIRE(idx < values.size(), "index out of range");
      block[i] = values[idx];
    }
    const auto th = quantile_thresholds(block, levels);
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t level = level_of(block[i], th);
      for (std::uint8_t b : gray_code(level, cfg_.bits_per_sample)) {
        out.push_back(b != 0);
      }
    }
    start += len;
  }
  return out;
}

std::vector<std::size_t> intersect_indices(std::span<const std::size_t> a,
                                           std::span<const std::size_t> b) {
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace vkey::core
