#include "core/dataset.h"

#include <algorithm>

#include "common/error.h"
#include "common/stats.h"

namespace vkey::core {

ArRssiStreams extract_streams(const std::vector<channel::ProbeRound>& rounds,
                              const ArRssiExtractor& extractor,
                              std::size_t reciprocal_windows) {
  ArRssiStreams s;
  for (const auto& r : rounds) {
    const auto a = extractor.sequence(r.alice_rx);
    const auto b = extractor.sequence(r.bob_rx);
    const auto e = extractor.sequence(r.eve_rx_bob_tx);
    // Keep the streams index-aligned even if sample counts differ by one
    // (defensive; packets share the same PHY so counts normally match).
    const std::size_t n = std::min({a.size(), b.size(), e.size()});
    if (n == 0) continue;
    const std::size_t k =
        reciprocal_windows == 0 ? n : std::min(reciprocal_windows, n);
    for (std::size_t j = 0; j < k; ++j) {
      // Alice: head of her reception window; Bob: tail of his, mirrored so
      // that index-aligned values are the temporally closest pairs.
      s.alice.push_back(a[j]);
      s.bob.push_back(b[n - 1 - j]);
      s.eve.push_back(e[j]);
    }
  }
  return s;
}

nn::Vec normalize_window(const std::vector<double>& raw, std::size_t pos,
                         std::size_t len) {
  VKEY_REQUIRE(pos + len <= raw.size(), "window out of range");
  const std::span<const double> w(raw.data() + pos, len);
  return vkey::stats::minmax01(w);
}

std::vector<TrainingSample> make_samples(const ArRssiStreams& streams,
                                         const DatasetConfig& cfg) {
  VKEY_REQUIRE(cfg.seq_len >= 4, "sequence length too short");
  VKEY_REQUIRE(streams.alice.size() == streams.bob.size() &&
                   streams.alice.size() == streams.eve.size(),
               "misaligned streams");
  const std::size_t stride = cfg.stride == 0 ? cfg.seq_len : cfg.stride;

  std::vector<TrainingSample> samples;
  for (std::size_t pos = 0; pos + cfg.seq_len <= streams.alice.size();
       pos += stride) {
    TrainingSample s;
    s.alice_seq = normalize_window(streams.alice, pos, cfg.seq_len);
    s.bob_seq = normalize_window(streams.bob, pos, cfg.seq_len);
    s.eve_seq = normalize_window(streams.eve, pos, cfg.seq_len);

    // Bob quantizes his raw (unnormalized) window; the quantizer is
    // block-adaptive so scale does not matter, but we pass raw values to
    // mirror the real protocol. Guard bands are disabled for Bob inside
    // Vehicle-Key (the BiLSTM head replaces index reconciliation).
    QuantizerConfig qc = cfg.quantizer;
    qc.guard_band_ratio = 0.0;
    qc.block_size = std::min(qc.block_size, cfg.seq_len);
    MultiBitQuantizer q(qc);
    std::vector<double> bob_raw(
        streams.bob.begin() + static_cast<std::ptrdiff_t>(pos),
        streams.bob.begin() + static_cast<std::ptrdiff_t>(pos + cfg.seq_len));
    s.bob_bits = q.quantize(bob_raw).bits;
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace vkey::core
