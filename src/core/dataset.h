// Training/evaluation dataset assembly for the BiLSTM model.
//
// For each probe round the two parties extract index-aligned arRSSI
// sequences (Bob's from his reception of Alice's probe, Alice's from her
// reception of Bob's response). Concatenating over rounds gives two aligned
// streams; fixed-length windows of those streams form the model's samples:
//   input   : Alice's normalized window (seq_len values)
//   target y: Bob's normalized window   (seq_len values)
//   target z: Bob's multi-bit quantization of his window (key_bits bits)
//
// Normalization is per-window min-max to [0,1], computed independently by
// each party from its own values (no information exchange is needed).
#pragma once

#include <cstddef>
#include <vector>

#include "channel/trace.h"
#include "common/bitvec.h"
#include "core/arrssi.h"
#include "core/quantizer.h"
#include "nn/param.h"

namespace vkey::core {

struct TrainingSample {
  nn::Vec alice_seq;  ///< normalized, length = seq_len
  nn::Vec bob_seq;    ///< normalized, length = seq_len
  BitVec bob_bits;    ///< quantized target, length = seq_len * bits_per_sample
  nn::Vec eve_seq;    ///< Eve's imitation window (normalized), for security eval
};

struct DatasetConfig {
  /// 64 arRSSI values feed one 64-bit key fragment (the paper's "map the
  /// predicted sequence to a 64-bit binary bit space").
  std::size_t seq_len = 64;
  /// Key-stream windows are finer than the 10% boundary-correlation optimum
  /// of Fig. 9: stream pairs sit up to (2k-1) windows apart, so smaller
  /// windows keep every pair inside the coherence time.
  ArRssiExtractor extractor{0.04};
  /// Bob's quantizer: one bit per arRSSI value (block-adaptive median
  /// threshold). Single-bit quantization keeps the fragment bit-disagreement
  /// rate inside the reconciler's correction radius; the multi-bit
  /// configuration remains available (and is what the baselines use).
  QuantizerConfig quantizer{.bits_per_sample = 1, .block_size = 16,
                            .guard_band_ratio = 0.0};
  std::size_t stride = 0;        ///< 0 = non-overlapping (stride = seq_len)
  /// Windows per packet taken from the reciprocal zone (see
  /// extract_streams). 0 = use every window of the packet.
  std::size_t reciprocal_windows = 4;
};

/// Aligned raw arRSSI streams extracted from a trace.
struct ArRssiStreams {
  std::vector<double> alice;
  std::vector<double> bob;
  std::vector<double> eve;  ///< Eve's imitation stream (Eve-Bob channel)
};

/// Concatenate per-round arRSSI sequences into index-aligned streams using
/// *mirrored reciprocal-zone pairing*: Bob receives first (Alice's probe),
/// Alice second (Bob's response), so the windows closest in time are the
/// TAIL of Bob's packet and the HEAD of Alice's packet. For each round we
/// therefore take Alice's first `reciprocal_windows` windows in order, and
/// Bob's last `reciprocal_windows` windows REVERSED: index-aligned pairs are
/// then separated by only (turnaround + (2j+1) * window) seconds — inside or
/// near the channel coherence time for small j — instead of a full packet
/// airtime. Eve's stream mirrors Alice's construction (she hears Bob's
/// response through her own Eve-Bob channel at the same instants).
/// `reciprocal_windows` = 0 uses every window of the packet.
ArRssiStreams extract_streams(const std::vector<channel::ProbeRound>& rounds,
                              const ArRssiExtractor& extractor,
                              std::size_t reciprocal_windows = 4);

/// Cut aligned streams into model samples.
std::vector<TrainingSample> make_samples(const ArRssiStreams& streams,
                                         const DatasetConfig& cfg);

/// Per-window min-max normalization to [0,1] (constant windows -> 0.5).
nn::Vec normalize_window(const std::vector<double>& raw, std::size_t pos,
                         std::size_t len);

}  // namespace vkey::core
