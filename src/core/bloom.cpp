#include "core/bloom.h"

#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace vkey::core {

PositionPreservingBloom::PositionPreservingBloom(std::size_t n_bits,
                                                 std::uint64_t session_seed)
    : n_(n_bits), perm_(n_bits), inv_perm_(n_bits), pad_(n_bits) {
  VKEY_REQUIRE(n_bits >= 2, "bloom width must be >= 2");
  vkey::Rng rng(vkey::hash_combine64(session_seed, 0xb100f17e));
  std::iota(perm_.begin(), perm_.end(), 0);
  // Fisher-Yates with the session-seeded RNG.
  for (std::size_t i = n_ - 1; i > 0; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.uniform_int(i + 1));
    std::swap(perm_[i], perm_[j]);
  }
  for (std::size_t i = 0; i < n_; ++i) inv_perm_[perm_[i]] = i;
  for (auto& p : pad_) p = rng.bernoulli(0.5) ? 1 : 0;
}

BitVec PositionPreservingBloom::apply(const BitVec& key) const {
  VKEY_REQUIRE(key.size() == n_, "bloom input size mismatch");
  BitVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out.set(perm_[i], (key.get(i) ^ pad_[i]) != 0);
  }
  return out;
}

BitVec PositionPreservingBloom::invert(const BitVec& mapped) const {
  VKEY_REQUIRE(mapped.size() == n_, "bloom input size mismatch");
  BitVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out.set(i, (mapped.get(perm_[i]) ^ pad_[i]) != 0);
  }
  return out;
}

BitVec PositionPreservingBloom::map_mismatch_back(
    const BitVec& delta_mapped) const {
  VKEY_REQUIRE(delta_mapped.size() == n_, "bloom input size mismatch");
  BitVec out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out.set(i, delta_mapped.get(perm_[i]) != 0);
  }
  return out;
}

}  // namespace vkey::core
