#include "core/pipeline.h"

#include <cmath>
#include <optional>
#include <utility>

#include "common/error.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/trace.h"

namespace vkey::core {

namespace {

// Stage histograms are fetched once per process; the per-run cost is a
// relaxed atomic observe, keeping the hot path within the metrics budget.
metrics::Histogram& stage_hist(const char* stage) {
  return metrics::Registry::global().histogram(
      std::string("pipeline.stage.") + stage + "_ms");
}

metrics::Counter& bit_counter(const char* name) {
  return metrics::Registry::global().counter(std::string("pipeline.") + name);
}

}  // namespace

KeyGenPipeline::KeyGenPipeline(const PipelineConfig& config) : cfg_(config) {
  VKEY_REQUIRE(cfg_.reconciler.key_bits % cfg_.predictor.key_bits == 0,
               "reconciler block must be a multiple of the fragment width");
  VKEY_REQUIRE(cfg_.dataset.seq_len == cfg_.predictor.seq_len,
               "dataset and predictor sequence lengths must match");
  // The reconciler trains inside run(); unless the caller pinned its lane
  // count explicitly it inherits the pipeline-wide setting.
  if (cfg_.reconciler.threads == 0) cfg_.reconciler.threads = cfg_.threads;
}

PredictorQuantizer& KeyGenPipeline::predictor() {
  VKEY_REQUIRE(predictor_.has_value(), "run() has not trained a predictor");
  return *predictor_;
}

AutoencoderReconciler& KeyGenPipeline::reconciler() {
  VKEY_REQUIRE(reconciler_.has_value(), "run() has not trained a reconciler");
  return *reconciler_;
}

PipelineMetrics KeyGenPipeline::run(std::size_t train_rounds,
                                    std::size_t test_rounds) {
  VKEY_REQUIRE(test_rounds >= 1, "need test rounds");
  static metrics::Histogram& run_ms = stage_hist("run");
  static metrics::Histogram& probe_ms = stage_hist("probe");
  static metrics::Histogram& extract_ms = stage_hist("extract");
  static metrics::Histogram& train_pred_ms = stage_hist("train_predictor");
  static metrics::Histogram& train_rec_ms = stage_hist("train_reconciler");
  static metrics::Histogram& predict_ms = stage_hist("predict");
  static metrics::Histogram& quantize_ms = stage_hist("quantize");
  static metrics::Histogram& reconcile_ms = stage_hist("reconcile");
  static metrics::Histogram& eval_ms = stage_hist("eval");
  static metrics::Counter& quantized_bits = bit_counter("bits.quantized");
  bit_counter("runs").add(1);

  channel::TraceGenerator gen(cfg_.trace);

  // Root of the run's span tree: every stage timer below (and, through the
  // pool's lane annotation, every span opened inside parallel fan-out)
  // parents under it.
  trace::ScopedTimer run_timer(run_ms, "pipeline.run");
  run_timer.attr("train_rounds", train_rounds)
      .attr("test_rounds", test_rounds)
      .attr("threads", cfg_.threads);

  // --- data collection ---
  trace::ScopedTimer probe_timer(probe_ms, "pipeline.probe");
  const auto train_trace = gen.generate(train_rounds);
  const auto test_trace = gen.generate(test_rounds);
  probe_timer.stop();

  trace::ScopedTimer extract_timer(extract_ms, "pipeline.extract");
  const auto train_streams = extract_streams(
      train_trace, cfg_.dataset.extractor, cfg_.dataset.reciprocal_windows);
  const auto test_streams = extract_streams(
      test_trace, cfg_.dataset.extractor, cfg_.dataset.reciprocal_windows);
  DatasetConfig train_ds = cfg_.dataset;
  train_ds.stride = cfg_.train_stride;
  DatasetConfig test_ds = cfg_.dataset;
  test_ds.stride = 0;  // non-overlapping evaluation windows
  const auto train_samples = make_samples(train_streams, train_ds);
  test_samples_ = make_samples(test_streams, test_ds);
  const auto& test_samples = test_samples_;
  extract_timer.stop();
  VKEY_REQUIRE(!test_samples.empty(), "test segment produced no samples");

  // --- training ---
  if (cfg_.use_prediction) {
    VKEY_REQUIRE(!train_samples.empty(), "train segment produced no samples");
    trace::ScopedTimer t(train_pred_ms, "pipeline.train_predictor");
    predictor_.emplace(cfg_.predictor);
    predictor_->train(train_samples, cfg_.predictor_epochs);
  }
  {
    trace::ScopedTimer t(train_rec_ms, "pipeline.train_reconciler");
    reconciler_.emplace(cfg_.reconciler);
    reconciler_->train(cfg_.reconciler_samples, cfg_.reconciler_epochs);
  }

  // --- evaluation ---
  // Every per-sample and per-block step below is a pure function of the
  // trained (now immutable) models, so the stage fans out through the
  // deterministic pool: results land in index-addressed slots and every
  // order-sensitive reduction runs on this thread in index order, which
  // keeps the output bit-identical for any thread count.
  trace::ScopedTimer eval_timer(eval_ms, "pipeline.eval");
  const std::size_t frag_bits = cfg_.predictor.key_bits;
  const std::size_t block_bits = cfg_.reconciler.key_bits;

  // The multi-bit fallback is only needed for the Fig. 10 ablation branch;
  // the normal prediction path never constructs it.
  std::optional<MultiBitQuantizer> fallback_quant;
  if (!cfg_.use_prediction) {
    QuantizerConfig qc = cfg_.dataset.quantizer;
    qc.guard_band_ratio = 0.0;
    qc.block_size = std::min(qc.block_size, cfg_.dataset.seq_len);
    fallback_quant.emplace(qc);
  }

  struct Fragment {
    BitVec alice, eve;
  };
  std::vector<Fragment> fragments;
  if (cfg_.use_prediction) {
    // Chunked, batched prediction: windows are grouped into fixed-size
    // chunks and each chunk runs through PredictorQuantizer::infer_batch
    // so the Dense heads make one blocked pass per chunk. The chunk
    // geometry depends only on the sample count — never on the lane
    // count — and the batched path is bit-identical per member to
    // sequential infer(), so the output stays byte-stable for any
    // `threads` value (see DESIGN.md "Parallel execution & determinism
    // contract").
    constexpr std::size_t kPredictChunk = 16;
    const std::size_t n = test_samples.size();
    const std::size_t n_chunks = (n + kPredictChunk - 1) / kPredictChunk;
    fragments.assign(n, Fragment{});
    parallel::parallel_for(
        n_chunks,
        [&](std::size_t c) {
          const std::size_t lo = c * kPredictChunk;
          const std::size_t hi = std::min(n, lo + kPredictChunk);
          trace::ScopedTimer t(predict_ms, "pipeline.predict_chunk");
          t.attr("chunk", c).attr("windows", 2 * (hi - lo));
          std::vector<nn::Vec> windows;
          windows.reserve(2 * (hi - lo));
          for (std::size_t i = lo; i < hi; ++i) {
            windows.push_back(test_samples[i].alice_seq);
            windows.push_back(test_samples[i].eve_seq);
          }
          const auto outs = predictor_->infer_batch(windows);
          for (std::size_t i = lo; i < hi; ++i) {
            fragments[i].alice = outs[2 * (i - lo)].bits;
            fragments[i].eve = outs[2 * (i - lo) + 1].bits;
            quantized_bits.add(fragments[i].alice.size());
          }
        },
        cfg_.threads);
  } else {
    fragments = parallel::parallel_map(
        test_samples,
        [&](const TrainingSample& s, std::size_t) {
          // Ablation: Alice quantizes her own window directly.
          Fragment f;
          trace::ScopedTimer t(quantize_ms);
          std::vector<double> a(s.alice_seq.begin(), s.alice_seq.end());
          std::vector<double> e(s.eve_seq.begin(), s.eve_seq.end());
          f.alice = fallback_quant->quantize(a).bits;
          f.eve = fallback_quant->quantize(e).bits;
          // Pad/trim to the fragment width (guard bands disabled, so sizes
          // normally already match).
          while (f.alice.size() < frag_bits) f.alice.push_back(false);
          f.alice = f.alice.slice(0, frag_bits);
          while (f.eve.size() < frag_bits) f.eve.push_back(false);
          f.eve = f.eve.slice(0, frag_bits);
          quantized_bits.add(f.alice.size());
          return f;
        },
        cfg_.threads);
  }

  // Concatenate the fixed-width fragments once; blocks then read at bit
  // offsets instead of repeatedly re-slicing shrinking accumulators.
  BitVec alice_bits, bob_bits, eve_bits;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    VKEY_REQUIRE(fragments[i].alice.size() == frag_bits &&
                     test_samples[i].bob_bits.size() == frag_bits,
                 "fragment width mismatch");
    alice_bits.append(fragments[i].alice);
    eve_bits.append(fragments[i].eve);
    bob_bits.append(test_samples[i].bob_bits);
  }

  const std::size_t n_blocks = alice_bits.size() / block_bits;
  VKEY_REQUIRE(n_blocks >= 1, "not enough test data for one key block");
  blocks_.assign(n_blocks, KeyBlockResult{});
  parallel::parallel_for(
      n_blocks,
      [&](std::size_t b) {
        const std::size_t off = b * block_bits;
        KeyBlockResult blk;
        blk.bob_key = bob_bits.slice(off, block_bits);
        const BitVec ka = alice_bits.slice(off, block_bits);
        const BitVec ke = eve_bits.slice(off, block_bits);
        blk.alice_raw = ka;
        blk.kar_pre = ka.agreement(blk.bob_key);
        {
          trace::ScopedTimer t(reconcile_ms, "pipeline.reconcile_block");
          t.attr("block", b);
          const auto y_bob = reconciler_->encode_bob(blk.bob_key);
          blk.alice_corrected = reconciler_->reconcile(ka, y_bob);
          blk.kar_post = blk.alice_corrected.agreement(blk.bob_key);
          blk.success = blk.alice_corrected == blk.bob_key;
          // Eve eavesdrops y_Bob and runs the public decoder with her key:
          // one-shot (the paper's Fig. 15 attack) and iterative (stronger).
          blk.eve_kar_post =
              reconciler_->reconcile_one_shot(ke, y_bob).agreement(
                  blk.bob_key);
          blk.eve_kar_iterative =
              reconciler_->reconcile(ke, y_bob).agreement(blk.bob_key);
        }
        blocks_[b] = std::move(blk);
      },
      cfg_.threads);

  // Ordered reduction over the finished blocks.
  std::vector<double> kar_pre_list, kar_post_list, eve_list, eve_iter_list;
  std::size_t success = 0;
  kar_pre_list.reserve(n_blocks);
  kar_post_list.reserve(n_blocks);
  eve_list.reserve(n_blocks);
  eve_iter_list.reserve(n_blocks);
  for (const auto& blk : blocks_) {
    bit_counter("blocks.total").add(1);
    bit_counter("bits.reconciled").add(block_bits);
    if (blk.success) {
      bit_counter("blocks.success").add(1);
      bit_counter("bits.agreed").add(block_bits);
      ++success;
    }
    kar_pre_list.push_back(blk.kar_pre);
    kar_post_list.push_back(blk.kar_post);
    eve_list.push_back(blk.eve_kar_post);
    eve_iter_list.push_back(blk.eve_kar_iterative);
  }
  eval_timer.stop();

  PipelineMetrics m;
  m.blocks = blocks_.size();
  m.mean_kar_pre = vkey::stats::mean(kar_pre_list);
  m.mean_kar_post = vkey::stats::mean(kar_post_list);
  m.std_kar_post = kar_post_list.size() >= 2
                       ? vkey::stats::sample_stddev(kar_post_list)
                       : 0.0;
  m.key_success_rate =
      static_cast<double>(success) / static_cast<double>(blocks_.size());
  m.mean_eve_kar = vkey::stats::mean(eve_list);
  m.mean_eve_kar_iterative = vkey::stats::mean(eve_iter_list);
  m.test_duration_s = static_cast<double>(test_rounds) * gen.round_duration();
  // Key generation rate (the convention of the LoRa key-generation
  // literature): net secret bits produced per second of channel use —
  // matched post-reconciliation bits, minus the public-syndrome leakage
  // (code_dim values leak at most code_dim bits; privacy amplification
  // discounts them). The same accounting is applied to every baseline.
  const double net_bits_per_block =
      std::max(0.0, static_cast<double>(cfg_.reconciler.key_bits) -
                        static_cast<double>(cfg_.reconciler.code_dim));
  // Guard the division: a zero-duration trace (degenerate PHY/interval
  // configuration) must not push inf/nan into the JSON exporters.
  m.kgr_bits_per_s = m.test_duration_s > 0.0
                         ? static_cast<double>(blocks_.size()) *
                               net_bits_per_block * m.mean_kar_post /
                               m.test_duration_s
                         : 0.0;
  return m;
}

BitVec KeyGenPipeline::amplified_key_stream() const {
  VKEY_REQUIRE(!blocks_.empty(), "run() produced no blocks");
  static metrics::Histogram& amplify_ms = stage_hist("amplify");
  trace::ScopedTimer t(amplify_ms, "pipeline.amplify");
  BitVec stream;
  std::uint64_t salt = 0;
  for (const auto& blk : blocks_) {
    if (!blk.success) continue;
    stream.append(amplifier_.amplify(blk.alice_corrected, salt++));
  }
  bit_counter("bits.amplified").add(stream.size());
  return stream;
}

}  // namespace vkey::core
