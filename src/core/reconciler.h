// Autoencoder-based reconciliation (paper Sec. IV-C, Fig. 7).
//
// Both keys pass through the position-preserving Bloom map. Two MLP encoders
// compress the mapped keys into M-dimensional code vectors; Bob publishes
// y_Bob (plus a MAC). Alice computes h = y_Bob - y_Alice — a condensed
// expression of the mismatch — and feeds it to a decoder MLP that outputs
// the estimated mismatch vector delta_x. Alice corrects K'_Alice ^ delta_x,
// inverts the Bloom map, and both sides privacy-amplify.
//
// Training is offline and synthetic: pairs (K_B, K_A = K_B ^ e) with sparse
// random error patterns e at the channel's bit-disagreement rates; the loss
// is || delta_x - e ||^2 in the mapped domain (Eq. 6, realized as BCE on
// logits which shares the same minimizer and trains more stably).
//
// Cost accounting: decode_flops() counts the multiply-accumulates of one
// reconciliation, the quantity Fig. 11 compares against the CS/OMP decoder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "core/bloom.h"
#include "nn/dense.h"

namespace vkey::core {

struct ReconcilerConfig {
  std::size_t key_bits = 64;     ///< N (one BiLSTM fragment)
  std::size_t code_dim = 32;     ///< M: encoder output ("32 units")
  std::size_t decoder_units = 64;///< hidden width of the 3 decoder layers
  std::size_t decoder_layers = 3;
  double learning_rate = 2e-3;
  std::size_t batch_size = 32;
  /// Bit-disagreement rates sampled during training (uniform over range).
  double train_ber_lo = 0.0;
  double train_ber_hi = 0.20;
  /// Share one encoder between the two parties (f1 == f2). With untied
  /// linear encoders the code difference h = f1(K'_B) - f2(K'_A) contains a
  /// nuisance term (W1 - W2) K'_A that the decoder cannot observe; tying
  /// removes it so h depends only on the mismatch pattern. The paper draws
  /// two encoder MLPs; tying is the weight-shared special case.
  bool tie_encoders = true;
  /// Keep the encoder frozen at its random initialization. A random
  /// projection is a near-optimal sensing matrix (the same reason CS uses
  /// one), and joint training tends to trade RIP quality for easier
  /// marginal prediction. Mirrors the random-sensing + learned-decoder
  /// design of the CS-autoencoder the paper builds on [24].
  bool freeze_encoder = true;
  /// Greedy decoding budget: the decoder is applied iteratively — each pass
  /// flips the single most confident mismatch in Alice's working key and
  /// re-encodes (Alice-side only, no extra communication). One-shot MLP
  /// support recovery from an M-dimensional code is unreliable; the greedy
  /// loop only ever needs the *argmax* to be a true mismatch, which is a far
  /// easier decision (the same reason OMP's first iteration succeeds where
  /// full recovery fails).
  std::size_t max_decode_iterations = 40;
  std::uint64_t seed = 11;
  std::uint64_t session_seed = 0x5e551011;  ///< Bloom parameters
  /// Worker lanes for training (synthetic-pair generation and the batched
  /// forward/backward). 0 = process default. Training is bit-reproducible
  /// for every value: each synthetic pair draws from its own
  /// hash_combine64(seed, index)-derived stream and per-sample gradients
  /// are reduced in sample order (see DESIGN.md "Parallel execution &
  /// determinism contract").
  std::size_t threads = 0;
};

class AutoencoderReconciler {
 public:
  explicit AutoencoderReconciler(const ReconcilerConfig& config);

  const ReconcilerConfig& config() const { return cfg_; }

  /// Train on `num_samples` synthetic key pairs for `epochs` epochs.
  /// Returns the final mean training loss.
  double train(std::size_t num_samples, std::size_t epochs);

  /// Bob's side: Bloom-map the key and encode; the returned vector is the
  /// public syndrome y_Bob.
  std::vector<double> encode_bob(const BitVec& key_bob) const;

  struct DecodeResult {
    BitVec mismatch;         ///< estimated flips, original key space
    std::size_t iterations = 0;  ///< greedy passes used
  };

  /// Alice's side: recover the estimated mismatch (in original key space).
  DecodeResult decode_mismatch(const BitVec& key_alice,
                               std::span<const double> y_bob) const;

  /// Alice's side, full correction: returns K_Alice ^ mismatch, which equals
  /// K_Bob whenever the decoder recovered every flip.
  BitVec reconcile(const BitVec& key_alice,
                   std::span<const double> y_bob) const;

  /// Single decoder pass (the paper's original inference: one forward pass
  /// of g, logits thresholded at 0.5). Used by the security analysis to
  /// reproduce Fig. 15's eavesdropping attack exactly; the iterative
  /// reconcile() is strictly stronger for the legitimate party.
  BitVec reconcile_one_shot(const BitVec& key_alice,
                            std::span<const double> y_bob) const;

  /// Multiply-accumulate count of one decoder pass (encoder + decoder g);
  /// total reconciliation cost is this times DecodeResult::iterations —
  /// the Fig. 11 computation-cost metric.
  std::size_t decode_flops() const;

  /// Multiply-accumulate count of Bob's side (encoder f1 only).
  std::size_t encode_flops() const;

  std::vector<nn::Parameter*> parameters();

 private:
  /// Per-sample gradient sink for the batched-parallel training path: one
  /// worker computes a sample's full gradient into its own sink; the
  /// training loop then folds the sinks into the shared parameters in
  /// sample order so the sum is independent of the schedule.
  struct GradSink;
  double train_one_into(const BitVec& key_bob, const BitVec& key_alice,
                        GradSink& sink) const;
  void fold_sink(const GradSink& sink);

  ReconcilerConfig cfg_;
  vkey::Rng rng_;
  PositionPreservingBloom bloom_;
  nn::Dense f1_;                    ///< Bob's encoder
  nn::Dense f2_;                    ///< Alice's encoder
  std::vector<nn::Dense> decoder_;  ///< hidden layers + output (logits)
};

}  // namespace vkey::core
