#include "core/arrssi.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace vkey::core {

ArRssiExtractor::ArRssiExtractor(double window_fraction)
    : window_fraction_(window_fraction) {
  VKEY_REQUIRE(window_fraction > 0.0 && window_fraction <= 1.0,
               "window fraction must be in (0, 1]");
}

std::size_t ArRssiExtractor::window_len(std::size_t n) const {
  VKEY_REQUIRE(n >= 1, "empty packet");
  const auto w = static_cast<std::size_t>(
      std::round(window_fraction_ * static_cast<double>(n)));
  return std::max<std::size_t>(1, std::min(w, n));
}

ArRssiExtractor::BoundaryPair ArRssiExtractor::boundary_pair(
    const channel::ProbeRound& round) const {
  const auto& bob = round.bob_rx.rrssi;
  const auto& alice = round.alice_rx.rrssi;
  VKEY_REQUIRE(!bob.empty() && !alice.empty(), "round missing observations");
  const std::size_t wb = window_len(bob.size());
  const std::size_t wa = window_len(alice.size());
  BoundaryPair p;
  p.bob_arrssi = vkey::stats::mean(
      std::span<const double>(bob.data() + bob.size() - wb, wb));
  p.alice_arrssi =
      vkey::stats::mean(std::span<const double>(alice.data(), wa));
  return p;
}

double ArRssiExtractor::eve_boundary(const channel::ProbeRound& round) const {
  const auto& eve = round.eve_rx_bob_tx.rrssi;
  VKEY_REQUIRE(!eve.empty(), "round missing Eve observation");
  const std::size_t we = window_len(eve.size());
  return vkey::stats::mean(std::span<const double>(eve.data(), we));
}

std::vector<double> ArRssiExtractor::sequence(
    const channel::PacketObservation& obs) const {
  const auto& r = obs.rrssi;
  VKEY_REQUIRE(!r.empty(), "empty packet observation");
  const std::size_t w = window_len(r.size());
  std::vector<double> out;
  out.reserve(r.size() / w);
  for (std::size_t i = 0; i + w <= r.size(); i += w) {
    out.push_back(
        vkey::stats::mean(std::span<const double>(r.data() + i, w)));
  }
  return out;
}

std::size_t ArRssiExtractor::values_per_packet(std::size_t n) const {
  return n / window_len(n);
}

}  // namespace vkey::core
