// Multi-bit adaptive quantization (Jana et al. [2], used by Bob in
// Vehicle-Key and by the LoRa-Key / Han et al. baselines).
//
// Measurements are processed in blocks. Within each block the 2^b quantile
// thresholds are computed so each level is equally likely, and each sample is
// Gray-coded into b bits. An optional guard band of ratio alpha (LoRa-Key
// uses alpha = 0.8) drops samples falling within alpha * (level width)
// around each threshold; the kept-sample indices are returned so the two
// parties can intersect them (index reconciliation), at the cost of key rate.
//
// Block adaptivity matters for security: thresholds track the local mean, so
// the emitted bits encode *relative* variation (small-scale + local
// shadowing) rather than absolute signal level — an eavesdropper who shares
// the coarse path loss but not the fine fading gains almost nothing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/bitvec.h"

namespace vkey::core {

struct QuantizerConfig {
  int bits_per_sample = 2;       ///< b: 1..4
  std::size_t block_size = 32;   ///< samples per adaptive block
  double guard_band_ratio = 0.0;  ///< alpha in [0,1): 0 disables guard bands
};

struct QuantizationResult {
  BitVec bits;                        ///< Gray-coded bits of kept samples
  std::vector<std::size_t> kept;      ///< indices of samples kept
};

class MultiBitQuantizer {
 public:
  explicit MultiBitQuantizer(const QuantizerConfig& config = {});

  const QuantizerConfig& config() const { return cfg_; }

  /// Quantize a measurement series. A trailing partial block shorter than
  /// half the block size is merged into the previous block.
  QuantizationResult quantize(std::span<const double> values) const;

  /// Quantize using only the samples listed in `indices` (after the two
  /// parties have exchanged kept-index lists and intersected them).
  /// Thresholds are recomputed over the restricted set, per block.
  BitVec quantize_at(std::span<const double> values,
                     std::span<const std::size_t> indices) const;

  /// Gray code of `level` using `bits` bits (exposed for tests).
  static std::vector<std::uint8_t> gray_code(std::size_t level, int bits);

 private:
  QuantizerConfig cfg_;
};

/// Intersect two sorted index lists (helper for guard-band reconciliation).
std::vector<std::size_t> intersect_indices(
    std::span<const std::size_t> a, std::span<const std::size_t> b);

}  // namespace vkey::core
