// End-to-end Vehicle-Key pipeline (Fig. 5): probing -> arRSSI extraction ->
// BiLSTM prediction+quantization (Alice) / multi-bit quantization (Bob) ->
// autoencoder reconciliation -> privacy amplification.
//
// The pipeline owns a trace generator, trains the two learned components on
// an initial segment of the trace and evaluates on the following segment,
// reporting the paper's two headline metrics:
//   * key agreement rate (KAR): fraction of agreeing bits between the two
//     parties' keys, before and after reconciliation;
//   * key generation rate (KGR): successfully agreed secret bits per second
//     of channel use.
// It also evaluates Eve (imitating attacker) through the identical pipeline.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/trace.h"
#include "common/bitvec.h"
#include "core/dataset.h"
#include "core/predictor.h"
#include "core/privacy.h"
#include "core/reconciler.h"

namespace vkey::core {

struct PipelineConfig {
  channel::TraceConfig trace;
  DatasetConfig dataset;
  PredictorConfig predictor;
  ReconcilerConfig reconciler;
  std::size_t predictor_epochs = 45;
  std::size_t reconciler_epochs = 25;
  std::size_t reconciler_samples = 3000;
  /// Stride for the *training* sample windows (overlap augments the small
  /// per-trace dataset); evaluation always uses non-overlapping windows.
  std::size_t train_stride = 4;
  /// Fig. 10 ablation: false replaces the BiLSTM with Alice running the
  /// same multi-bit quantizer as Bob on her own measurements.
  bool use_prediction = true;
  /// Worker lanes for the parallel stages (per-sample inference, per-block
  /// reconciliation, reconciler training). 0 = process default
  /// (parallel::default_threads(), i.e. --threads / VKEY_THREADS /
  /// hardware concurrency). Results are bit-identical for every value —
  /// see DESIGN.md "Parallel execution & determinism contract".
  std::size_t threads = 0;
};

/// One reconciled key block and its quality.
struct KeyBlockResult {
  BitVec bob_key;            ///< reference key (Bob's)
  BitVec alice_raw;          ///< Alice's key before reconciliation — the
                             ///< probe material a protocol session starts from
  BitVec alice_corrected;    ///< Alice's key after reconciliation
  double kar_pre = 0.0;      ///< bit agreement before reconciliation
  double kar_post = 0.0;     ///< bit agreement after reconciliation
  bool success = false;      ///< exact agreement (usable key)
  /// Eve's agreement after the paper's eavesdropping attack (one decoder
  /// pass on y_Bob with her own key material).
  double eve_kar_post = 0.0;
  /// Eve's agreement when she additionally misuses the iterative decoder
  /// (a strictly stronger attack than the paper evaluates).
  double eve_kar_iterative = 0.0;
};

struct PipelineMetrics {
  double mean_kar_pre = 0.0;
  double mean_kar_post = 0.0;
  double std_kar_post = 0.0;
  double key_success_rate = 0.0;  ///< fraction of blocks agreeing exactly
  double kgr_bits_per_s = 0.0;    ///< successfully agreed bits / second
  double mean_eve_kar = 0.0;      ///< Eve, one-shot decode (paper's attack)
  double mean_eve_kar_iterative = 0.0;  ///< Eve misusing iterative decode
  std::size_t blocks = 0;
  double test_duration_s = 0.0;
};

class KeyGenPipeline {
 public:
  explicit KeyGenPipeline(const PipelineConfig& config);

  /// Generate the trace, train on the first `train_rounds`, evaluate on the
  /// next `test_rounds`.
  PipelineMetrics run(std::size_t train_rounds, std::size_t test_rounds);

  /// Per-block details of the last run() (for randomness/NIST harvesting).
  const std::vector<KeyBlockResult>& blocks() const { return blocks_; }

  /// Evaluation windows of the last run() — lets protocol-layer callers
  /// (e.g. the gateway simulator) drive the trained predictor with the
  /// same held-out measurement windows the metrics were computed on.
  const std::vector<TrainingSample>& test_samples() const {
    return test_samples_;
  }

  /// Concatenation of all successfully agreed, privacy-amplified keys from
  /// the last run() — the bit stream fed to the NIST suite (Table II).
  BitVec amplified_key_stream() const;

  /// Trained components (valid after run()).
  PredictorQuantizer& predictor();
  AutoencoderReconciler& reconciler();

  const PipelineConfig& config() const { return cfg_; }

 private:
  PipelineConfig cfg_;
  std::optional<PredictorQuantizer> predictor_;
  std::optional<AutoencoderReconciler> reconciler_;
  std::vector<KeyBlockResult> blocks_;
  std::vector<TrainingSample> test_samples_;
  PrivacyAmplifier amplifier_{128};
};

}  // namespace vkey::core
