// Position-preserving Bloom mapping (the paper's "adapted Bloom filter").
//
// The reconciliation autoencoder must not operate on raw keys: if Bob's code
// vector y_Bob were a compression of K_Bob itself, an attacker with the
// public decoder could attempt reconstruction. The paper routes both keys
// through an adapted Bloom filter [14] that "retains position information,
// which means that its output can retain the same number of mismatched bits
// as the input key". We realize that contract exactly: a session-seeded
// pseudorandom permutation of bit positions combined with a pseudorandom
// mask pad:
//
//      K'[perm(i)] = K[i] XOR pad(i)
//
// Properties (all verified by tests):
//  * Hamming distance is preserved exactly: |K'_A xor K'_B| = |K_A xor K_B|
//    (the pads cancel, the permutation only relabels positions).
//  * Legitimate parties (who share the public session parameters) can invert
//    the map after correction.
//  * The mismatch vector learned in K'-space maps back through the inverse
//    permutation; the pad cancels in the XOR domain.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"

namespace vkey::core {

class PositionPreservingBloom {
 public:
  /// `n_bits` input/output width, `session_seed` the public per-session
  /// parameter (both parties derive it from the session id).
  PositionPreservingBloom(std::size_t n_bits, std::uint64_t session_seed);

  std::size_t size() const { return n_; }

  /// Forward map K -> K'.
  BitVec apply(const BitVec& key) const;

  /// Inverse map K' -> K.
  BitVec invert(const BitVec& mapped) const;

  /// Map a mismatch (XOR-difference) vector from K'-space back to K-space.
  /// Pads cancel under XOR, so this is the inverse permutation alone.
  BitVec map_mismatch_back(const BitVec& delta_mapped) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> perm_;      // i -> perm_[i]
  std::vector<std::size_t> inv_perm_;
  std::vector<std::uint8_t> pad_;
};

}  // namespace vkey::core
