#include "core/predictor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace vkey::core {

namespace {
/// Per-step input: [value, phase within the mirror pairing, progress].
nn::Seq to_seq(const nn::Vec& v, std::size_t phase_period) {
  nn::Seq s(v.size());
  const double n = static_cast<double>(v.size());
  const double period = static_cast<double>(std::max<std::size_t>(1, phase_period));
  for (std::size_t t = 0; t < v.size(); ++t) {
    s[t] = {v[t], static_cast<double>(t % phase_period) / period,
            static_cast<double>(t) / n};
  }
  return s;
}
}  // namespace

PredictorQuantizer::PredictorQuantizer(const PredictorConfig& config)
    : cfg_(config),
      rng_(config.seed),
      bilstm_(3, config.hidden, rng_),
      pred_head_(config.seq_len * 2 * config.hidden, config.seq_len, rng_),
      quant_head_(config.seq_len, config.key_bits, rng_) {
  VKEY_REQUIRE(config.seq_len >= 4, "sequence too short");
  VKEY_REQUIRE(config.hidden >= 2, "hidden size too small");
  VKEY_REQUIRE(config.theta >= 0.0 && config.theta <= 1.0,
               "theta must be in [0,1]");
  if (config.quantized) set_quantized(true);
}

void PredictorQuantizer::set_quantized(bool quantized) {
  bilstm_.set_quantized(quantized);
  pred_head_.set_quantized(quantized);
  quant_head_.set_quantized(quantized);
}

std::vector<nn::Parameter*> PredictorQuantizer::parameters() {
  auto p = bilstm_.parameters();
  for (auto* q : pred_head_.parameters()) p.push_back(q);
  for (auto* q : quant_head_.parameters()) p.push_back(q);
  return p;
}

double PredictorQuantizer::train_one(const TrainingSample& s) {
  VKEY_REQUIRE(s.alice_seq.size() == cfg_.seq_len, "sample seq_len mismatch");
  VKEY_REQUIRE(s.bob_seq.size() == cfg_.seq_len, "sample target mismatch");
  VKEY_REQUIRE(s.bob_bits.size() == cfg_.key_bits,
               "sample bits width mismatch");

  // Forward.
  const nn::Seq h = bilstm_.forward(to_seq(s.alice_seq, cfg_.phase_period));
  nn::Vec flat;
  flat.reserve(cfg_.seq_len * 2 * cfg_.hidden);
  for (const auto& ht : h) flat.insert(flat.end(), ht.begin(), ht.end());
  const nn::Vec y_hat = pred_head_.forward(flat);
  const nn::Vec logits = quant_head_.forward(y_hat);

  // Joint loss.
  const auto mse = nn::mse_loss(y_hat, s.bob_seq);
  const auto bce = nn::bce_with_logits(logits, s.bob_bits.to_doubles());
  const double loss = cfg_.theta * mse.loss + (1.0 - cfg_.theta) * bce.loss;

  // Backward: BCE through the quantization head into y_hat, plus the MSE
  // gradient directly on y_hat.
  nn::Vec dlogits(bce.grad.size());
  for (std::size_t i = 0; i < dlogits.size(); ++i) {
    dlogits[i] = (1.0 - cfg_.theta) * bce.grad[i];
  }
  nn::Vec dy = quant_head_.backward(dlogits);
  for (std::size_t i = 0; i < dy.size(); ++i) {
    dy[i] += cfg_.theta * mse.grad[i];
  }
  const nn::Vec dflat = pred_head_.backward(dy);

  nn::Seq dh(cfg_.seq_len, nn::Vec(2 * cfg_.hidden));
  for (std::size_t t = 0; t < cfg_.seq_len; ++t) {
    std::copy(dflat.begin() + static_cast<std::ptrdiff_t>(t * 2 * cfg_.hidden),
              dflat.begin() +
                  static_cast<std::ptrdiff_t>((t + 1) * 2 * cfg_.hidden),
              dh[t].begin());
  }
  bilstm_.backward(dh);
  return loss;
}

TrainReport PredictorQuantizer::train(std::span<const TrainingSample> samples,
                                      std::size_t epochs) {
  VKEY_REQUIRE(!samples.empty(), "no training samples");
  nn::Adam opt(parameters(), cfg_.learning_rate);

  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  TrainReport report;
  for (std::size_t e = 0; e < epochs; ++e) {
    // Shuffle sample order each epoch.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng_.uniform_int(i))]);
    }
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;
    for (std::size_t idx : order) {
      epoch_loss += train_one(samples[idx]);
      if (++in_batch == cfg_.batch_size) {
        opt.step(in_batch);
        in_batch = 0;
      }
    }
    if (in_batch > 0) opt.step(in_batch);
    report.epoch_loss.push_back(epoch_loss /
                                static_cast<double>(samples.size()));
  }
  report.final_loss = report.epoch_loss.back();
  return report;
}

PredictorQuantizer::Output PredictorQuantizer::infer(
    const nn::Vec& alice_seq) const {
  VKEY_REQUIRE(alice_seq.size() == cfg_.seq_len, "input seq_len mismatch");
  const nn::Seq h = bilstm_.infer(to_seq(alice_seq, cfg_.phase_period));
  nn::Vec flat;
  flat.reserve(cfg_.seq_len * 2 * cfg_.hidden);
  for (const auto& ht : h) flat.insert(flat.end(), ht.begin(), ht.end());
  Output out;
  out.predicted_seq = pred_head_.infer(flat);
  const nn::Vec logits = quant_head_.infer(out.predicted_seq);
  out.probabilities = nn::sigmoid_vec(logits);
  out.bits = BitVec::from_doubles_threshold(out.probabilities);
  return out;
}

std::vector<PredictorQuantizer::Output> PredictorQuantizer::infer_batch(
    std::span<const nn::Vec> windows) const {
  for (const auto& w : windows) {
    VKEY_REQUIRE(w.size() == cfg_.seq_len, "input seq_len mismatch");
  }
  std::vector<Output> outs(windows.size());
  if (windows.empty()) return outs;

  // BiLSTM per window (its weights stay cache-resident), flattened per
  // member exactly as in infer().
  std::vector<nn::Vec> flats(windows.size());
  for (std::size_t m = 0; m < windows.size(); ++m) {
    const nn::Seq h = bilstm_.infer(to_seq(windows[m], cfg_.phase_period));
    auto& flat = flats[m];
    flat.reserve(cfg_.seq_len * 2 * cfg_.hidden);
    for (const auto& ht : h) flat.insert(flat.end(), ht.begin(), ht.end());
  }

  // One blocked pass per Dense head over the whole batch: the prediction
  // head's weight panels stream through cache once per batch instead of
  // once per window.
  std::vector<const nn::Vec*> xs(windows.size());
  for (std::size_t m = 0; m < windows.size(); ++m) xs[m] = &flats[m];
  std::vector<nn::Vec> y_hats = pred_head_.infer_batch(xs);
  for (std::size_t m = 0; m < windows.size(); ++m) xs[m] = &y_hats[m];
  std::vector<nn::Vec> logits = quant_head_.infer_batch(xs);

  for (std::size_t m = 0; m < windows.size(); ++m) {
    outs[m].predicted_seq = std::move(y_hats[m]);
    outs[m].probabilities = nn::sigmoid_vec(logits[m]);
    outs[m].bits = BitVec::from_doubles_threshold(outs[m].probabilities);
  }
  return outs;
}

double PredictorQuantizer::evaluate_loss(
    std::span<const TrainingSample> samples) const {
  VKEY_REQUIRE(!samples.empty(), "no samples");
  double total = 0.0;
  for (const auto& s : samples) {
    const Output o = infer(s.alice_seq);
    const auto mse = nn::mse_loss(o.predicted_seq, s.bob_seq);
    // Recompute BCE from probabilities (logits not retained): use the
    // numerically-safe clipped form.
    double bce = 0.0;
    const auto z = s.bob_bits.to_doubles();
    for (std::size_t i = 0; i < z.size(); ++i) {
      const double p = std::clamp(o.probabilities[i], 1e-12, 1.0 - 1e-12);
      bce += -(z[i] * std::log(p) + (1.0 - z[i]) * std::log(1.0 - p));
    }
    total += cfg_.theta * mse.loss + (1.0 - cfg_.theta) * bce;
  }
  return total / static_cast<double>(samples.size());
}

}  // namespace vkey::core
