// arRSSI feature extraction (paper Sec. II-C).
//
// The register RSSI (rRSSI) gives one instantaneous sample per symbol, but a
// single sample is noisy. Vehicle-Key averages windows of adjacent samples —
// the "adjacent register RSSI" (arRSSI). Two granularities are used:
//
//  * boundary_pair(): one arRSSI per party per probe round, built from the
//    window adjacent to the other party's window (the last w% of the first
//    receiver's samples and the first w% of the second receiver's samples).
//    These two windows are separated only by the turnaround delay, i.e. they
//    fall inside the channel coherence time. This is the quantity swept in
//    Fig. 9 (the correlation peaks near w = 10%).
//
//  * sequence(): the full per-packet arRSSI sequence — non-overlapping
//    window means across all rRSSI samples of a packet. This is the key
//    material stream feeding the BiLSTM model; its length (~ samples/window
//    per packet) is what gives Vehicle-Key its 9-14x key-generation-rate
//    advantage over pRSSI-based schemes (one value per packet).
#pragma once

#include <vector>

#include "channel/trace.h"

namespace vkey::core {

class ArRssiExtractor {
 public:
  /// `window_fraction` in (0, 1]: window size as a fraction of the packet's
  /// rRSSI sample count (paper optimum: 0.10).
  explicit ArRssiExtractor(double window_fraction = 0.10);

  double window_fraction() const { return window_fraction_; }

  /// Window length in samples for a packet with `samples_per_packet` rRSSIs.
  std::size_t window_len(std::size_t samples_per_packet) const;

  struct BoundaryPair {
    double bob_arrssi = 0.0;  ///< mean of the tail window of Bob's reception
    /// Mean of the head window of Alice's reception.
    double alice_arrssi = 0.0;
  };

  /// The coherence-time-adjacent pair for one probe round: Bob receives
  /// first (during Alice's probe), so his *last* window is adjacent to the
  /// *first* window of Alice's reception of the response.
  BoundaryPair boundary_pair(const channel::ProbeRound& round) const;

  /// Eve's imitation of Alice's boundary value: the head window of her
  /// observation of Bob's response over the Eve-Bob channel.
  double eve_boundary(const channel::ProbeRound& round) const;

  /// Non-overlapping window means over a packet's rRSSI samples
  /// (any trailing partial window is dropped).
  std::vector<double> sequence(const channel::PacketObservation& obs) const;

  /// Number of arRSSI values sequence() yields for a packet of `n` samples.
  std::size_t values_per_packet(std::size_t n) const;

 private:
  double window_fraction_ = 0.0;
};

}  // namespace vkey::core
