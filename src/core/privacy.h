// Privacy amplification (paper Sec. IV-C, final stage).
//
// Reconciliation publishes y_Bob, leaking partial information; hashing the
// agreed bit string compresses that leakage away and whitens residual bias.
// The paper applies "SHA-128"; we realize it as SHA-256 truncated to the
// requested output width (128 bits by default), optionally salted with the
// session id so different sessions with identical raw material still derive
// independent keys.
#pragma once

#include <array>
#include <cstdint>

#include "common/bitvec.h"

namespace vkey::core {

class PrivacyAmplifier {
 public:
  /// `out_bits` must be in [8, 256] and a multiple of 8.
  explicit PrivacyAmplifier(std::size_t out_bits = 128);

  /// Hash the agreed raw bits (with an optional session salt) down to the
  /// configured output width.
  BitVec amplify(const BitVec& raw, std::uint64_t session_salt = 0) const;

  /// Convenience: amplified key as 16-byte AES-128 key material
  /// (requires out_bits == 128).
  std::array<std::uint8_t, 16> aes_key(const BitVec& raw,
                                       std::uint64_t session_salt = 0) const;

  std::size_t out_bits() const { return out_bits_; }

 private:
  std::size_t out_bits_ = 0;
};

}  // namespace vkey::core
