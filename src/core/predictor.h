// The BiLSTM-based joint prediction + quantization model (paper Sec. IV-B).
//
// Architecture (Fig. 6): input arRSSI sequence -> one BiLSTM layer ->
// flatten -> fully connected prediction head (seq_len units, the predicted
// arRSSI sequence y_hat) -> fully connected quantization head (key_bits
// units) -> sigmoid -> predicted bit vector z_hat.
//
// Joint loss (Eq. 3): theta * MSE(y, y_hat) + (1 - theta) * BCE(z, z_hat)
// with theta = 0.9. The BCE gradient flows back through the quantization
// head into the prediction head and the BiLSTM, so the two tasks are
// optimized together.
//
// Only Alice (or a power-rich RSU) runs this model; Bob uses the
// conventional multi-bit quantizer on his own measurements.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.h"
#include "core/dataset.h"
#include "nn/dense.h"
#include "nn/lstm.h"

namespace vkey::core {

struct PredictorConfig {
  std::size_t seq_len = 64;   ///< input sequence length
  std::size_t hidden = 32;    ///< BiLSTM hidden units (paper: 128; see
                              ///< DESIGN.md "NN sizing" for the default)
  std::size_t key_bits = 64;  ///< quantization head width (paper value)
  double theta = 0.9;         ///< joint-loss weight (paper value)
  double learning_rate = 2e-3;
  std::size_t batch_size = 16;
  /// Period of the phase input feature. Mirrored reciprocal-zone pairing
  /// (see dataset.h) gives stream index j a lag of (2*(j mod k)+1) windows;
  /// feeding the phase j mod k lets the BiLSTM learn per-lag compensation.
  std::size_t phase_period = 4;
  std::uint64_t seed = 7;
  /// Route inference through the int8 fused kernels with polynomial gate
  /// activations (gemm.h). Training always stays float; the float infer
  /// path stays bit-exact vs the naive reference. The ablation bench
  /// measures the key-agreement-rate delta of this flag.
  bool quantized = false;
};

struct TrainReport {
  std::vector<double> epoch_loss;   ///< mean joint loss per epoch
  double final_loss = 0.0;
};

class PredictorQuantizer {
 public:
  explicit PredictorQuantizer(const PredictorConfig& config);

  const PredictorConfig& config() const { return cfg_; }

  /// Train for `epochs` epochs over the samples (Adam, mini-batches).
  TrainReport train(std::span<const TrainingSample> samples,
                    std::size_t epochs);

  struct Output {
    nn::Vec predicted_seq;   ///< y_hat, length seq_len
    nn::Vec probabilities;   ///< sigmoid outputs, length key_bits
    BitVec bits;             ///< thresholded at 0.5
  };

  /// Inference on one normalized arRSSI window.
  Output infer(const nn::Vec& alice_seq) const;

  /// Batched inference: the BiLSTM runs per window (its weights are
  /// cache-resident), then both Dense heads run one blocked pass over the
  /// whole batch — the prediction head's weights (~2 MB at the default
  /// sizing) stream through cache once per batch instead of once per
  /// window. Bit-identical to calling infer() per window, in order.
  std::vector<Output> infer_batch(std::span<const nn::Vec> windows) const;

  /// Toggle the int8 inference path at runtime (see PredictorConfig).
  void set_quantized(bool quantized);
  bool quantized() const { return bilstm_.quantized(); }

  /// All trainable parameters (for snapshot/restore and fine-tuning).
  std::vector<nn::Parameter*> parameters();

  /// Joint loss on a sample set without updating weights.
  double evaluate_loss(std::span<const TrainingSample> samples) const;

 private:
  double train_one(const TrainingSample& s);  ///< fwd+bwd, returns loss

  PredictorConfig cfg_;
  vkey::Rng rng_;
  nn::BiLstm bilstm_;
  nn::Dense pred_head_;   ///< flatten(seq_len * 2H) -> seq_len
  nn::Dense quant_head_;  ///< seq_len -> key_bits (logits)
};

}  // namespace vkey::core
