#include "core/privacy.h"

#include "common/error.h"
#include "crypto/secret_buffer.h"
#include "crypto/sha256.h"

namespace vkey::core {

PrivacyAmplifier::PrivacyAmplifier(std::size_t out_bits)
    : out_bits_(out_bits) {
  VKEY_REQUIRE(out_bits >= 8 && out_bits <= 256 && out_bits % 8 == 0,
               "out_bits must be a multiple of 8 in [8, 256]");
}

BitVec PrivacyAmplifier::amplify(const BitVec& raw,
                                 std::uint64_t session_salt) const {
  VKEY_REQUIRE(!raw.empty(), "nothing to amplify");
  crypto::Sha256 h;  // destructor wipes the absorbed key material
  auto bytes = raw.to_bytes();
  h.update(bytes);
  crypto::secure_wipe(bytes);
  std::uint8_t salt[8];
  for (int i = 0; i < 8; ++i) {
    salt[i] = static_cast<std::uint8_t>(session_salt >> (56 - 8 * i));
  }
  h.update(salt, sizeof(salt));
  auto digest = h.finalize();
  auto out = BitVec::from_bytes(
      std::vector<std::uint8_t>(digest.begin(), digest.end()), out_bits_);
  crypto::secure_wipe(digest.data(), digest.size());
  return out;
}

std::array<std::uint8_t, 16> PrivacyAmplifier::aes_key(
    const BitVec& raw, std::uint64_t session_salt) const {
  VKEY_REQUIRE(out_bits_ == 128, "aes_key requires 128-bit output");
  auto bytes = amplify(raw, session_salt).to_bytes();
  std::array<std::uint8_t, 16> key{};
  std::copy(bytes.begin(), bytes.begin() + 16, key.begin());
  crypto::secure_wipe(bytes);
  return key;
}

}  // namespace vkey::core
