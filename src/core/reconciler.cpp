#include "core/reconciler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "common/error.h"
#include "common/parallel.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace vkey::core {

AutoencoderReconciler::AutoencoderReconciler(const ReconcilerConfig& config)
    : cfg_(config),
      rng_(config.seed),
      bloom_(config.key_bits, config.session_seed),
      f1_(config.key_bits, config.code_dim, rng_),
      f2_(config.key_bits, config.code_dim, rng_) {
  VKEY_REQUIRE(config.key_bits >= 8, "key too short");
  VKEY_REQUIRE(config.code_dim >= 2, "code dimension too small");
  VKEY_REQUIRE(config.decoder_layers >= 1, "need at least one decoder layer");
  VKEY_REQUIRE(config.train_ber_lo >= 0.0 &&
                   config.train_ber_hi <= 0.5 &&
                   config.train_ber_lo <= config.train_ber_hi,
               "bad training BER range");

  std::size_t in = cfg_.code_dim;
  for (std::size_t l = 0; l < cfg_.decoder_layers; ++l) {
    decoder_.emplace_back(in, cfg_.decoder_units, rng_,
                          nn::Activation::kTanh);
    in = cfg_.decoder_units;
  }
  decoder_.emplace_back(in, cfg_.key_bits, rng_);  // logits
}

std::vector<nn::Parameter*> AutoencoderReconciler::parameters() {
  std::vector<nn::Parameter*> p;
  if (!cfg_.freeze_encoder) {
    if (cfg_.tie_encoders) {
      // Weights only: the encoder bias cancels in h = y_B - y_A, so it is
      // pinned at zero to keep training and inference consistent.
      p.push_back(f1_.parameters()[0]);
    } else {
      for (auto* q : f1_.parameters()) p.push_back(q);
      for (auto* q : f2_.parameters()) p.push_back(q);
    }
  }
  for (auto& layer : decoder_) {
    for (auto* q : layer.parameters()) p.push_back(q);
  }
  return p;
}

/// One sample's gradient, held apart from the shared parameters so a batch
/// can fan out across worker lanes; sized lazily to the layers that are
/// actually trainable under the current config.
struct AutoencoderReconciler::GradSink {
  nn::Vec f1_w, f1_b;
  nn::Vec f2_w, f2_b;
  std::vector<nn::Dense::Cache> decoder_caches;
  std::vector<nn::Vec> dec_w, dec_b;

  void reset(const AutoencoderReconciler& r) {
    const bool train_encoder = !r.cfg_.freeze_encoder;
    auto zero = [](nn::Vec& v, std::size_t n) { v.assign(n, 0.0); };
    if (train_encoder) {
      zero(f1_w, r.f1_.weights().value.size());
      zero(f1_b, r.f1_.bias().value.size());
      if (!r.cfg_.tie_encoders) {
        zero(f2_w, r.f2_.weights().value.size());
        zero(f2_b, r.f2_.bias().value.size());
      }
    }
    decoder_caches.resize(r.decoder_.size());
    dec_w.resize(r.decoder_.size());
    dec_b.resize(r.decoder_.size());
    for (std::size_t l = 0; l < r.decoder_.size(); ++l) {
      zero(dec_w[l], r.decoder_[l].weights().value.size());
      zero(dec_b[l], r.decoder_[l].bias().value.size());
    }
  }
};

double AutoencoderReconciler::train_one_into(const BitVec& key_bob,
                                             const BitVec& key_alice,
                                             GradSink& sink) const {
  const BitVec kb = bloom_.apply(key_bob);
  const BitVec ka = bloom_.apply(key_alice);
  const BitVec e = kb ^ ka;
  const bool train_encoder = !cfg_.freeze_encoder;

  nn::Vec h(cfg_.code_dim);
  nn::Dense::Cache f1_cache, f2_cache;
  if (cfg_.tie_encoders) {
    // Tied linear encoders: h = f(K'_B) - f(K'_A) = W (K'_B - K'_A); the
    // bias cancels, so training on the difference vector is exactly the
    // weight-shared gradient (g x kb - g x ka = g x diff).
    const auto db = kb.to_doubles();
    const auto da = ka.to_doubles();
    nn::Vec diff(db.size());
    for (std::size_t i = 0; i < diff.size(); ++i) diff[i] = db[i] - da[i];
    h = f1_.forward(diff, f1_cache);
  } else {
    const nn::Vec yb = f1_.forward(kb.to_doubles(), f1_cache);
    const nn::Vec ya = f2_.forward(ka.to_doubles(), f2_cache);
    for (std::size_t i = 0; i < h.size(); ++i) h[i] = yb[i] - ya[i];
  }

  nn::Vec x = h;
  for (std::size_t l = 0; l < decoder_.size(); ++l) {
    x = decoder_[l].forward(x, sink.decoder_caches[l]);
  }

  const auto bce = nn::bce_with_logits(x, e.to_doubles());

  // Backward through the decoder stack.
  nn::Vec g = bce.grad;
  for (std::size_t l = decoder_.size(); l-- > 0;) {
    g = decoder_[l].backward(sink.decoder_caches[l], g, sink.dec_w[l],
                             sink.dec_b[l]);
  }
  if (train_encoder) {
    if (cfg_.tie_encoders) {
      f1_.backward(f1_cache, g, sink.f1_w, sink.f1_b);
    } else {
      // h = yb - ya: gradient splits with opposite signs.
      f1_.backward(f1_cache, g, sink.f1_w, sink.f1_b);
      nn::Vec neg(g.size());
      for (std::size_t i = 0; i < g.size(); ++i) neg[i] = -g[i];
      f2_.backward(f2_cache, neg, sink.f2_w, sink.f2_b);
    }
  }
  return bce.loss;
}

double AutoencoderReconciler::train(std::size_t num_samples,
                                    std::size_t epochs) {
  VKEY_REQUIRE(num_samples >= 1 && epochs >= 1, "nothing to train on");
  nn::Adam opt(parameters(), cfg_.learning_rate);

  // Pre-generate the synthetic pair set so epochs revisit the same data.
  // Each pair draws from its own hash-derived stream, making generation
  // order-free: any lane can produce pair s and the result is identical.
  const std::uint64_t pair_seed = hash_combine64(cfg_.seed, 0x70616972ULL);
  auto pairs = parallel::parallel_map_n(
      num_samples,
      [&](std::size_t s) {
        vkey::Rng rng(hash_combine64(pair_seed, s));
        BitVec kb(cfg_.key_bits);
        for (std::size_t i = 0; i < cfg_.key_bits; ++i) {
          kb.set(i, rng.bernoulli(0.5));
        }
        const double ber = rng.uniform(cfg_.train_ber_lo, cfg_.train_ber_hi);
        BitVec ka = kb;
        for (std::size_t i = 0; i < cfg_.key_bits; ++i) {
          if (rng.bernoulli(ber)) ka.flip(i);
        }
        return std::pair<BitVec, BitVec>(std::move(kb), std::move(ka));
      },
      cfg_.threads);

  // Batched forward/backward: the samples of one mini-batch fan out, each
  // writing its loss and gradient into a private per-slot sink; the fold
  // into the shared parameter gradients below is strictly in sample order,
  // so the non-associative double sums match the sequential reference.
  const std::size_t batch = cfg_.batch_size;
  std::vector<GradSink> sinks(std::min(batch, pairs.size()));
  std::vector<double> losses(sinks.size());

  double last_epoch_loss = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) {
    // Shuffle (sequential by design: the epoch permutation is part of the
    // deterministic training schedule, not per-index work).
    for (std::size_t i = pairs.size(); i > 1; --i) {
      std::swap(pairs[i - 1],
                pairs[static_cast<std::size_t>(rng_.uniform_int(i))]);
    }
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < pairs.size(); start += batch) {
      const std::size_t bs = std::min(batch, pairs.size() - start);
      parallel::parallel_for(
          bs,
          [&](std::size_t j) {
            sinks[j].reset(*this);
            losses[j] = train_one_into(pairs[start + j].first,
                                       pairs[start + j].second, sinks[j]);
          },
          cfg_.threads);
      for (std::size_t j = 0; j < bs; ++j) {
        epoch_loss += losses[j];
        fold_sink(sinks[j]);
      }
      opt.step(bs);
    }
    last_epoch_loss = epoch_loss / static_cast<double>(pairs.size());
  }
  return last_epoch_loss;
}

void AutoencoderReconciler::fold_sink(const GradSink& sink) {
  auto add = [](nn::Vec& dst, const nn::Vec& src) {
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
  };
  if (!cfg_.freeze_encoder) {
    add(f1_.weights_grad(), sink.f1_w);
    add(f1_.bias_grad(), sink.f1_b);
    if (!cfg_.tie_encoders) {
      add(f2_.weights_grad(), sink.f2_w);
      add(f2_.bias_grad(), sink.f2_b);
    }
  }
  for (std::size_t l = 0; l < decoder_.size(); ++l) {
    add(decoder_[l].weights_grad(), sink.dec_w[l]);
    add(decoder_[l].bias_grad(), sink.dec_b[l]);
  }
}

std::vector<double> AutoencoderReconciler::encode_bob(
    const BitVec& key_bob) const {
  VKEY_REQUIRE(key_bob.size() == cfg_.key_bits, "key width mismatch");
  return f1_.infer(bloom_.apply(key_bob).to_doubles());
}

AutoencoderReconciler::DecodeResult AutoencoderReconciler::decode_mismatch(
    const BitVec& key_alice, std::span<const double> y_bob) const {
  VKEY_REQUIRE(key_alice.size() == cfg_.key_bits, "key width mismatch");
  VKEY_REQUIRE(y_bob.size() == cfg_.code_dim, "syndrome width mismatch");
  const nn::Dense& alice_encoder = cfg_.tie_encoders ? f1_ : f2_;

  // Greedy decoding. The syndrome travels as data (not over a noisy analog
  // channel), so h = y_Bob - f(K'_work) vanishes exactly when the working
  // key matches Bob's. Each pass the decoder MLP scores candidate mismatch
  // positions; Alice — who holds the public encoder — verifies the
  // shortlisted flips algebraically (with a tied linear encoder a flip of
  // bit i changes h by -(1-2w_i) * W_col_i, so the post-flip residual costs
  // two dot products) and commits the flip that shrinks ||h|| the most.
  // A pass that cannot shrink the residual terminates the loop, so a wrong
  // greedy step can always be undone but never loops forever.
  const nn::Vec& w_flat = alice_encoder.weights().value;  // code_dim x key_bits
  BitVec work = bloom_.apply(key_alice);
  BitVec delta(cfg_.key_bits);
  std::size_t iters = 0;
  constexpr std::size_t kShortlist = 16;

  // Current residual h (maintained incrementally after the first pass).
  nn::Vec h(cfg_.code_dim);
  {
    const nn::Vec ya = alice_encoder.infer(work.to_doubles());
    for (std::size_t i = 0; i < h.size(); ++i) h[i] = y_bob[i] - ya[i];
  }
  double h_norm2 = 0.0;
  for (double v : h) h_norm2 += v * v;
  const double initial_norm2 = h_norm2;
  BitVec best_delta = delta;
  double best_norm2 = h_norm2;

  while (iters < cfg_.max_decode_iterations && h_norm2 > 1e-9) {
    ++iters;
    nn::Vec x = h;
    for (const auto& layer : decoder_) x = layer.infer(x);

    // Shortlist the decoder's top-scored positions.
    std::vector<std::size_t> order(cfg_.key_bits);
    std::iota(order.begin(), order.end(), 0);
    const std::size_t take = std::min(kShortlist, order.size());
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(take),
                      order.end(),
                      [&x](std::size_t a, std::size_t b) { return x[a] > x[b]; });

    // Verify candidates: pick the flip that shrinks ||h|| the most.
    std::size_t best_pos = cfg_.key_bits;
    double pick_norm2 = h_norm2 - 1e-12;
    double best_sign = 0.0;
    for (std::size_t c = 0; c < take; ++c) {
      const std::size_t i = order[c];
      // Flipping work_i changes the encoder input by (1 - 2 w_i), so
      // h' = h - (1 - 2 w_i) * W_col_i.
      const double s = work.get(i) ? -1.0 : 1.0;
      double dot_hw = 0.0, w_norm2 = 0.0;
      for (std::size_t r = 0; r < cfg_.code_dim; ++r) {
        const double wv = w_flat[r * cfg_.key_bits + i];
        dot_hw += h[r] * wv;
        w_norm2 += wv * wv;
      }
      const double cand_norm2 = h_norm2 - 2.0 * s * dot_hw + w_norm2;
      if (cand_norm2 < pick_norm2) {
        pick_norm2 = cand_norm2;
        best_pos = i;
        best_sign = s;
      }
    }
    if (best_pos == cfg_.key_bits) break;  // no flip improves the residual

    for (std::size_t r = 0; r < cfg_.code_dim; ++r) {
      h[r] -= best_sign * w_flat[r * cfg_.key_bits + best_pos];
    }
    h_norm2 = pick_norm2;
    work.flip(best_pos);
    delta.flip(best_pos);
    // Track the best state reached (used if we fail to fully converge).
    if (h_norm2 < best_norm2) {
      best_norm2 = h_norm2;
      best_delta = delta;
    }
  }

  // Convergence gate: a mismatch inside the design radius drives the
  // residual to (near) zero — the syndrome is exact. If the residual never
  // collapsed, the mismatch was denser than the code can localize (e.g. an
  // eavesdropper misusing the public decoder with uncorrelated key
  // material): report reconciliation failure by applying no correction.
  if (best_norm2 > 0.25 * initial_norm2) {
    return DecodeResult{BitVec(cfg_.key_bits), iters};
  }
  return DecodeResult{bloom_.map_mismatch_back(best_delta), iters};
}

BitVec AutoencoderReconciler::reconcile(const BitVec& key_alice,
                                        std::span<const double> y_bob) const {
  return key_alice ^ decode_mismatch(key_alice, y_bob).mismatch;
}

BitVec AutoencoderReconciler::reconcile_one_shot(
    const BitVec& key_alice, std::span<const double> y_bob) const {
  VKEY_REQUIRE(key_alice.size() == cfg_.key_bits, "key width mismatch");
  VKEY_REQUIRE(y_bob.size() == cfg_.code_dim, "syndrome width mismatch");
  const nn::Dense& alice_encoder = cfg_.tie_encoders ? f1_ : f2_;
  const nn::Vec ya =
      alice_encoder.infer(bloom_.apply(key_alice).to_doubles());
  nn::Vec h(cfg_.code_dim);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = y_bob[i] - ya[i];
  nn::Vec x = h;
  for (const auto& layer : decoder_) x = layer.infer(x);
  BitVec delta(cfg_.key_bits);
  for (std::size_t i = 0; i < cfg_.key_bits; ++i) delta.set(i, x[i] > 0.0);
  return key_alice ^ bloom_.map_mismatch_back(delta);
}

std::size_t AutoencoderReconciler::decode_flops() const {
  // Alice: f2 (N x M) + decoder stack.
  std::size_t flops = cfg_.key_bits * cfg_.code_dim;
  std::size_t in = cfg_.code_dim;
  for (std::size_t l = 0; l < cfg_.decoder_layers; ++l) {
    flops += in * cfg_.decoder_units;
    in = cfg_.decoder_units;
  }
  flops += in * cfg_.key_bits;
  return flops;
}

std::size_t AutoencoderReconciler::encode_flops() const {
  return cfg_.key_bits * cfg_.code_dim;
}

}  // namespace vkey::core
