#include "cs/compressed_sensing.h"

#include <cmath>

#include "common/error.h"

namespace vkey::cs {

Matrix make_sensing_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  VKEY_REQUIRE(m >= 1 && n >= 1, "sensing matrix dims must be positive");
  vkey::Rng rng(seed);
  Matrix phi(m, n);
  const double scale = 1.0 / std::sqrt(static_cast<double>(m));
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      phi(r, c) = rng.bernoulli(0.5) ? scale : -scale;
    }
  }
  return phi;
}

OmpResult omp(const Matrix& phi, const std::vector<double>& y,
              std::size_t max_sparsity, double tolerance) {
  VKEY_REQUIRE(y.size() == phi.rows(), "omp measurement size mismatch");
  VKEY_REQUIRE(max_sparsity >= 1, "omp needs max_sparsity >= 1");
  const std::size_t m = phi.rows();
  const std::size_t n = phi.cols();
  max_sparsity = std::min(max_sparsity, m);

  std::vector<double> residual = y;
  std::vector<std::size_t> support;
  std::vector<double> coeffs;
  std::size_t iterations = 0;

  while (support.size() < max_sparsity && norm2(residual) > tolerance) {
    ++iterations;
    // Select the column most correlated with the residual.
    std::size_t best = n;  // sentinel
    double best_corr = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      bool used = false;
      for (std::size_t s : support) {
        if (s == c) {
          used = true;
          break;
        }
      }
      if (used) continue;
      double corr = 0.0;
      for (std::size_t r = 0; r < m; ++r) corr += phi(r, c) * residual[r];
      if (std::fabs(corr) > std::fabs(best_corr)) {
        best_corr = corr;
        best = c;
      }
    }
    if (best == n || best_corr == 0.0) break;
    support.push_back(best);

    // Least squares on the current support.
    Matrix sub(m, support.size());
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t j = 0; j < support.size(); ++j) {
        sub(r, j) = phi(r, support[j]);
      }
    }
    coeffs = Matrix::least_squares(sub, y);

    // Update residual.
    const std::vector<double> approx = sub.mul_vec(coeffs);
    for (std::size_t r = 0; r < m; ++r) residual[r] = y[r] - approx[r];
  }

  OmpResult out;
  out.x.assign(n, 0.0);
  for (std::size_t j = 0; j < support.size(); ++j) {
    out.x[support[j]] = coeffs[j];
  }
  out.iterations = iterations;
  out.residual_norm = norm2(residual);
  return out;
}

std::vector<double> cs_syndrome(const Matrix& phi, const BitVec& key) {
  VKEY_REQUIRE(key.size() == phi.cols(), "cs_syndrome key size mismatch");
  return phi.mul_vec(key.to_doubles());
}

CsReconcileResult cs_reconcile(const Matrix& phi, const BitVec& key_alice,
                               const std::vector<double>& syndrome_bob,
                               std::size_t max_mismatches) {
  VKEY_REQUIRE(key_alice.size() == phi.cols(),
               "cs_reconcile key size mismatch");
  const std::vector<double> s_alice = phi.mul_vec(key_alice.to_doubles());
  std::vector<double> delta(s_alice.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = syndrome_bob[i] - s_alice[i];
  }
  // delta = Phi * d with d = K_B - K_A sparse in {-1, 0, +1}.
  const OmpResult r = omp(phi, delta, max_mismatches);

  CsReconcileResult out{key_alice, r.iterations};
  for (std::size_t i = 0; i < r.x.size(); ++i) {
    // d = +1 means Bob has 1 where Alice has 0; d = -1 the opposite.
    if (std::fabs(r.x[i]) > 0.5) out.corrected.flip(i);
  }
  return out;
}

}  // namespace vkey::cs
