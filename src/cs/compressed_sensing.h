// Compressed-sensing reconciliation substrate.
//
// LoRa-Key (Xu et al.) and Gao et al. reconcile keys by exploiting the
// sparsity of the mismatch vector: Bob publishes s_B = Phi * K_B for a
// public random sensing matrix Phi (paper configuration: 20 x 64); Alice
// forms delta = s_B - Phi*K_A = Phi * d where d = K_B - K_A in {-1,0,1}^N is
// sparse, and recovers d with a greedy sparse solver. We implement
// Orthogonal Matching Pursuit with iteration accounting — the iteration /
// flop count is the "computation cost" axis against which the paper's
// autoencoder claims its ~10x advantage (Fig. 11).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/matrix.h"
#include "common/rng.h"

namespace vkey::cs {

/// Random sensing matrix with +-1/sqrt(M) entries (Bernoulli ensemble,
/// standard RIP-satisfying choice), M rows x N columns.
Matrix make_sensing_matrix(std::size_t m, std::size_t n, std::uint64_t seed);

struct OmpResult {
  std::vector<double> x;    ///< recovered sparse vector, length N
  std::size_t iterations = 0;  ///< greedy iterations performed
  double residual_norm = 0.0;  ///< final ||y - Phi x||
};

/// Orthogonal Matching Pursuit: solve y ~= Phi * x with at most
/// `max_sparsity` nonzeros, stopping early when the residual drops below
/// `tolerance`.
OmpResult omp(const Matrix& phi, const std::vector<double>& y,
              std::size_t max_sparsity, double tolerance = 1e-6);

/// One full CS reconciliation step from Alice's perspective:
/// given Phi, Alice's key and Bob's published syndrome s_B = Phi * K_B,
/// recover Bob's key estimate. Returns the corrected key and the OMP
/// iteration count (cost accounting).
struct CsReconcileResult {
  BitVec corrected;        ///< Alice's key after applying recovered flips
  std::size_t iterations = 0;
};
CsReconcileResult cs_reconcile(const Matrix& phi, const BitVec& key_alice,
                               const std::vector<double>& syndrome_bob,
                               std::size_t max_mismatches);

/// Bob's side: compute the syndrome to publish.
std::vector<double> cs_syndrome(const Matrix& phi, const BitVec& key);

}  // namespace vkey::cs
