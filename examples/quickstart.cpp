// Quickstart: establish a shared 128-bit key between two simulated
// LoRa-equipped vehicles and use it to protect a payload.
//
// The five-minute tour of the public API:
//   1. KeyGenPipeline simulates channel probing, trains the BiLSTM
//      prediction/quantization model and the autoencoder reconciler, and
//      produces reconciled key blocks.
//   2. AliceSession/BobSession run the authenticated agreement protocol
//      (syndrome + MAC, key confirmation, replay protection).
//   3. SecureLink protects traffic with AES-128-CTR + HMAC.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "protocol/session.h"

int main() {
  using namespace vkey;

  // --- 1. channel probing + key generation -------------------------------
  core::PipelineConfig cfg;
  cfg.trace.scenario =
      channel::make_scenario(channel::ScenarioKind::kV2IRural, /*speed=*/50.0);
  cfg.trace.seed = 2025;
  cfg.predictor.hidden = 16;   // small model: quickstart favours speed
  cfg.predictor_epochs = 10;
  cfg.reconciler_epochs = 15;
  cfg.reconciler_samples = 1500;

  std::printf("Probing the channel and training Vehicle-Key models...\n");
  core::KeyGenPipeline pipeline(cfg);
  const auto metrics = pipeline.run(/*train_rounds=*/300, /*test_rounds=*/200);

  std::printf("  key agreement rate: %.2f%% (pre-reconciliation %.2f%%)\n",
              100.0 * metrics.mean_kar_post, 100.0 * metrics.mean_kar_pre);
  std::printf("  key generation rate: %.2f bit/s over %.0f s of probing\n",
              metrics.kgr_bits_per_s, metrics.test_duration_s);
  std::printf("  eavesdropper agreement: %.2f%% (chance = 50%%)\n",
              100.0 * metrics.mean_eve_kar);

  // --- 2. authenticated key agreement over the public channel ------------
  const core::KeyBlockResult* block = nullptr;
  for (const auto& blk : pipeline.blocks()) {
    if (blk.success) {
      block = &blk;
      break;
    }
  }
  if (block == nullptr) {
    std::printf("no reconcilable block in this short demo trace; rerun\n");
    return 1;
  }

  protocol::SessionConfig session_cfg;
  session_cfg.session_id = 1;
  protocol::AliceSession alice(session_cfg, pipeline.reconciler(),
                               block->alice_corrected);
  protocol::BobSession bob(session_cfg, pipeline.reconciler(),
                           block->bob_key);
  protocol::PublicChannel channel;
  if (!run_key_agreement(channel, alice, bob)) {
    std::printf("key agreement failed\n");
    return 1;
  }
  std::printf("Protocol complete: both sides confirmed the same key "
              "(%zu protocol messages on the air).\n",
              channel.transcript().size());

  // --- 3. protected V2V traffic ------------------------------------------
  protocol::SecureLink alice_link(alice.final_key());
  protocol::SecureLink bob_link(bob.final_key());
  const std::vector<std::uint8_t> warning{'I', 'C', 'Y', ' ', 'R', 'O',
                                          'A', 'D', ' ', 'A', 'H', 'E',
                                          'A', 'D'};
  const auto sealed = alice_link.seal(session_cfg.session_id, 100, warning);
  const auto opened = bob_link.open(sealed);
  if (!opened || *opened != warning) {
    std::printf("payload protection failed\n");
    return 1;
  }
  std::printf("Bob decrypted Alice's warning: \"%.*s\"\n",
              static_cast<int>(opened->size()),
              reinterpret_cast<const char*>(opened->data()));
  std::printf("Quickstart OK.\n");
  return 0;
}
