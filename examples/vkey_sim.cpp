// vkey_sim — command-line driver for the Vehicle-Key pipeline.
//
// Runs the full key-generation pipeline on a configurable scenario and
// prints the evaluation metrics; useful for parameter exploration without
// writing code.
//
//   ./build/examples/vkey_sim --scenario v2v-urban --speed 60
//       --train-rounds 600 --test-rounds 400 --seed 7 [--no-prediction]
//
// Flags (all optional):
//   --scenario {v2i-urban|v2i-rural|v2v-urban|v2v-rural}   default v2v-urban
//   --speed KMH            vehicle speed                    default 50
//   --train-rounds N       probe rounds used for training   default 600
//   --test-rounds N        probe rounds used for evaluation default 400
//   --hidden N             BiLSTM hidden units              default 32
//   --epochs N             predictor training epochs        default 40
//   --decoder-units N      reconciler decoder width         default 64
//   --seed N               simulation seed                  default 1
//   --no-prediction        ablate the BiLSTM (direct quantization)
//   --int8                 run predictor *inference* through the int8
//                          fused kernels with polynomial activations
//                          (training stays float; see DESIGN.md "NN
//                          kernel core" for the KAR impact)
//
// Fault injection (any of these enables the reliable-link phase, which
// replays every evaluation block through the ARQ transport over a lossy
// virtual LoRa link):
//   --drop P               per-frame drop probability       default 0
//   --reorder P            per-frame reorder probability    default 0
//   --dup P                per-frame duplication probability default 0
//   --corrupt P            per-frame bit-corruption probability default 0
//   --link-seed N          fault/backoff seed               default 1
// Out-of-range probabilities are clamped into [0, 1] (drop into [0, 1))
// with a warning on stderr.
//
// Gateway mode:
//   --gateway N            after the pipeline run, drive N concurrent
//                          device sessions through the shared-clock
//                          GatewayEngine (admission control, rekey, idle
//                          eviction) using the pipeline's reconciler and
//                          evaluation blocks as probe material; the fault
//                          flags above shape every session's link
//   --max-inflight N       gateway establishment slots       default 256
//
// Observability:
//   --metrics              dump the metrics registry (counters, gauges,
//                          stage timers) after the run
//   --metrics-json PATH    write the registry snapshot as JSON to PATH
//   --trace-out PATH       enable span tracing and write the run's
//                          virtual-clock span tree (reliability attempts +
//                          flight-recorder events) as Chrome trace-event
//                          JSON; loadable in chrome://tracing / Perfetto and
//                          byte-identical across --threads values
//   --telemetry-out PATH   write delta-encoded telemetry samples as JSONL:
//                          one baseline sample after the pipeline, one after
//                          the reliable-link phase, and 1 s virtual-grid
//                          samples through the gateway run; restricted to
//                          the lane-invariant metric families, so the file
//                          is byte-identical across --threads values
//   --telemetry-all        widen the telemetry filter to every metric family
//                          (profiling mode; no longer byte-diffable)
//   --threads N            worker lanes for the parallel pipeline stages
//                          (N=1 is the bit-exact sequential reference)
// When the reliable-link phase fails blocks, up to three failed sessions'
// flight-recorder timelines are printed for post-mortem (then "N more
// failed blocks suppressed").
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/pipeline.h"
#include "protocol/gateway.h"
#include "protocol/reliability.h"
#include "protocol/wire.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario v2i-urban|v2i-rural|v2v-urban|"
               "v2v-rural] [--speed KMH] [--train-rounds N] "
               "[--test-rounds N] [--hidden N] [--epochs N] "
               "[--decoder-units N] [--seed N] [--no-prediction] [--int8] "
               "[--drop P] [--reorder P] [--dup P] [--corrupt P] "
               "[--link-seed N] [--gateway N] [--max-inflight N] "
               "[--metrics] [--metrics-json PATH] "
               "[--trace-out PATH] [--telemetry-out PATH] [--telemetry-all] "
               "[--threads N]\n",
               argv0);
  std::exit(2);
}

/// Strict numeric flag parsing: `std::atof`/`std::atoll` return 0 on
/// garbage, so `--drop banana` would silently run a lossless link. Require
/// the whole token to parse or bail out through usage().
double parse_double(const char* flag, const char* s, const char* argv0) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "%s expects a number, got '%s'\n", flag, s);
    usage(argv0);
  }
  return v;
}

std::uint64_t parse_u64(const char* flag, const char* s, const char* argv0) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || s[0] == '-') {
    std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n",
                 flag, s);
    usage(argv0);
  }
  return static_cast<std::uint64_t>(v);
}

/// Clamp a fault probability into [lo, hi], warning on stderr when the
/// value had to be moved (a typo'd `--drop 25` should not silently behave
/// like certain loss).
double clamp_prob(const char* flag, double v, double lo, double hi) {
  const double clamped = std::clamp(v, lo, hi);
  if (clamped != v) {
    std::fprintf(stderr,
                 "vkey_sim: %s %g is outside [%g, %g]; clamping to %g\n",
                 flag, v, lo, hi, clamped);
  }
  return clamped;
}

ScenarioKind parse_scenario(const std::string& s, const char* argv0) {
  if (s == "v2i-urban") return ScenarioKind::kV2IUrban;
  if (s == "v2i-rural") return ScenarioKind::kV2IRural;
  if (s == "v2v-urban") return ScenarioKind::kV2VUrban;
  if (s == "v2v-rural") return ScenarioKind::kV2VRural;
  std::fprintf(stderr, "unknown scenario '%s'\n", s.c_str());
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioKind kind = ScenarioKind::kV2VUrban;
  double speed = 50.0;
  std::size_t train_rounds = 600, test_rounds = 400;
  protocol::FaultConfig fault;
  bool run_link = false;
  std::size_t gateway_sessions = 0;
  std::size_t gateway_inflight = 256;
  bool dump_metrics = false;
  std::string metrics_json_path;
  std::string trace_out_path;
  std::string telemetry_out_path;
  bool telemetry_all = false;
  PipelineConfig cfg;
  cfg.predictor.hidden = 32;
  cfg.predictor_epochs = 40;
  cfg.reconciler.decoder_units = 64;
  cfg.trace.seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    auto next_double = [&]() { return parse_double(arg.c_str(), next(), argv[0]); };
    auto next_u64 = [&]() { return parse_u64(arg.c_str(), next(), argv[0]); };
    if (arg == "--scenario") kind = parse_scenario(next(), argv[0]);
    else if (arg == "--speed") speed = next_double();
    else if (arg == "--train-rounds") train_rounds = static_cast<std::size_t>(next_u64());
    else if (arg == "--test-rounds") test_rounds = static_cast<std::size_t>(next_u64());
    else if (arg == "--hidden") cfg.predictor.hidden = static_cast<std::size_t>(next_u64());
    else if (arg == "--epochs") cfg.predictor_epochs = static_cast<std::size_t>(next_u64());
    else if (arg == "--decoder-units") cfg.reconciler.decoder_units = static_cast<std::size_t>(next_u64());
    else if (arg == "--seed") cfg.trace.seed = next_u64();
    else if (arg == "--no-prediction") cfg.use_prediction = false;
    else if (arg == "--int8") cfg.predictor.quantized = true;
    // The channel model requires drop < 1 (certain loss can never make
    // progress); the other fault probabilities live in [0, 1].
    else if (arg == "--drop") { fault.drop_prob = clamp_prob("--drop", next_double(), 0.0, 0.99); run_link = true; }
    else if (arg == "--reorder") { fault.reorder_prob = clamp_prob("--reorder", next_double(), 0.0, 1.0); run_link = true; }
    else if (arg == "--dup") { fault.dup_prob = clamp_prob("--dup", next_double(), 0.0, 1.0); run_link = true; }
    else if (arg == "--corrupt") { fault.corrupt_prob = clamp_prob("--corrupt", next_double(), 0.0, 1.0); run_link = true; }
    else if (arg == "--link-seed") { fault.seed = next_u64(); run_link = true; }
    else if (arg == "--gateway") { gateway_sessions = static_cast<std::size_t>(next_u64()); if (gateway_sessions == 0) usage(argv[0]); }
    else if (arg == "--max-inflight") { gateway_inflight = static_cast<std::size_t>(next_u64()); if (gateway_inflight == 0) usage(argv[0]); }
    else if (arg == "--metrics") dump_metrics = true;
    else if (arg == "--metrics-json") metrics_json_path = next();
    else if (arg == "--trace-out") { trace_out_path = next(); trace::TraceLog::global().set_enabled(true); }
    else if (arg == "--telemetry-out") telemetry_out_path = next();
    else if (arg == "--telemetry-all") telemetry_all = true;
    else if (arg == "--threads") {
      const std::uint64_t n = next_u64();
      if (n == 0) usage(argv[0]);
      parallel::set_default_threads(static_cast<std::size_t>(n));
    }
    else usage(argv[0]);
  }
  if (speed <= 0.0 || train_rounds == 0 || test_rounds == 0) usage(argv[0]);

  cfg.trace.scenario = make_scenario(kind, speed);

  std::printf("vkey_sim: %s at %.0f km/h, seed %llu, %zu train / %zu test "
              "rounds, prediction %s\n",
              to_string(kind).c_str(), speed,
              static_cast<unsigned long long>(cfg.trace.seed), train_rounds,
              test_rounds,
              !cfg.use_prediction      ? "off"
              : cfg.predictor.quantized ? "on (int8)"
                                        : "on");

  // Optional telemetry: one sampler spans all phases on a single monotone
  // virtual timeline (each phase's SimClock starts at zero, so their spans
  // are stacked end to end via `telemetry_vt_ms`). The full gateway-stack
  // taxonomy is registered up front so every sample sees the same
  // instrument universe regardless of which faults or rejects fire.
  std::optional<telemetry::Sampler> telemetry;
  double telemetry_vt_ms = 0.0;
  if (!telemetry_out_path.empty()) {
    telemetry::SamplerConfig scfg;
    if (!telemetry_all) {
      scfg.include_prefixes = telemetry::deterministic_prefixes();
    }
    scfg.source = "vkey_sim";
    telemetry.emplace(std::move(scfg));
    if (metrics::enabled()) protocol::register_gateway_metrics();
  }

  KeyGenPipeline pipeline(cfg);
  const auto m = pipeline.run(train_rounds, test_rounds);
  // Baseline after the (wall-clock, lane-dependent) pipeline phase: the
  // virtual phases that follow then delta cleanly against it.
  if (telemetry) telemetry->sample(telemetry_vt_ms);

  Table t({"metric", "value"});
  t.add_row({"key blocks evaluated", std::to_string(m.blocks)});
  t.add_row({"KAR pre-reconciliation", Table::pct(m.mean_kar_pre)});
  t.add_row({"KAR post-reconciliation",
             Table::pct(m.mean_kar_post) + " ± " +
                 Table::pct(m.std_kar_post, 2)});
  t.add_row({"exact-key block rate", Table::pct(m.key_success_rate)});
  t.add_row({"KGR (net secret bit/s)", Table::fmt(m.kgr_bits_per_s, 3)});
  t.add_row({"Eve KAR (one-shot decode)", Table::pct(m.mean_eve_kar)});
  t.add_row({"Eve KAR (iterative misuse)",
             Table::pct(m.mean_eve_kar_iterative)});
  t.add_row({"evaluation span", Table::fmt(m.test_duration_s, 0) + " s"});
  t.print("results");

  if (run_link) {
    // Replay every evaluation block through the ARQ transport over a lossy
    // virtual LoRa link; session recovery harvests the next block's probe
    // material when an attempt burns its retry budget.
    const auto& blocks = pipeline.blocks();
    if (blocks.empty()) {
      std::printf("\nno evaluation blocks to drive over the lossy link\n");
      return 0;
    }
    std::printf("\nreliable-link phase: drop %.0f%%, reorder %.0f%%, dup "
                "%.0f%%, corrupt %.0f%%, link seed %llu\n",
                100.0 * fault.drop_prob, 100.0 * fault.reorder_prob,
                100.0 * fault.dup_prob, 100.0 * fault.corrupt_prob,
                static_cast<unsigned long long>(fault.seed));

    std::size_t established = 0, attempts = 0, retransmissions = 0;
    std::size_t frames = 0;
    constexpr std::size_t kMaxFailureDumps = 3;
    std::size_t failed_blocks = 0, dumps_shown = 0;
    std::vector<double> times;
    std::vector<std::size_t> failures(6, 0);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      protocol::ReliabilityConfig rcfg;
      rcfg.fault = fault;
      rcfg.fault.seed = hash_combine64(fault.seed, i);
      rcfg.arq.seed = hash_combine64(fault.seed ^ 0xa2c, i);
      rcfg.base_session_id = 1 + i * 16;
      const protocol::ProbeMaterialFn material =
          [&blocks, i](std::size_t attempt) {
            const auto& b = blocks[(i + attempt) % blocks.size()];
            return std::make_pair(b.alice_raw, b.bob_key);
          };
      protocol::PublicChannel base;
      const auto report = protocol::run_reliable_key_agreement(
          base, pipeline.reconciler(), rcfg, material);
      attempts += report.attempts;
      frames += report.wire_frames;
      for (const auto& att : report.attempt_log) {
        retransmissions += att.alice_transport.retransmissions +
                           att.bob_transport.retransmissions;
      }
      if (report.established) {
        ++established;
        times.push_back(report.time_to_establish_ms);
      } else {
        ++failures[static_cast<std::size_t>(report.failure)];
        ++failed_blocks;
        // Post-mortem: print failed sessions' flight-recorder timelines so
        // the injected fault is visible without re-running — bounded, so a
        // high-loss sweep cannot flood the console.
        if (dumps_shown < kMaxFailureDumps) {
          const std::string dump = report.failure_dump();
          if (!dump.empty()) {
            ++dumps_shown;
            std::printf("\nblock %zu failed; recent attempts' timelines:\n%s",
                        i, dump.c_str());
          }
        }
      }
    }
    if (failed_blocks > dumps_shown) {
      std::printf("\n%zu more failed block(s) suppressed\n",
                  failed_blocks - dumps_shown);
    }
    std::sort(times.begin(), times.end());
    const double median_ms =
        times.empty() ? 0.0
        : times.size() % 2 == 1
            ? times[times.size() / 2]
            : 0.5 * (times[times.size() / 2 - 1] + times[times.size() / 2]);

    Table lt({"metric", "value"});
    lt.add_row({"blocks driven over link", std::to_string(blocks.size())});
    lt.add_row({"established", Table::pct(static_cast<double>(established) /
                                          static_cast<double>(blocks.size()))});
    lt.add_row({"mean session attempts",
                Table::fmt(static_cast<double>(attempts) /
                               static_cast<double>(blocks.size()),
                           2)});
    lt.add_row({"median time-to-key", Table::fmt(median_ms / 1000.0, 2) + " virt s"});
    lt.add_row({"wire frames total", std::to_string(frames)});
    lt.add_row({"retransmissions total", std::to_string(retransmissions)});
    for (std::size_t r = 1; r < failures.size(); ++r) {
      if (failures[r] == 0) continue;
      lt.add_row({"failures: " +
                      to_string(static_cast<protocol::FailureReason>(r)),
                  std::to_string(failures[r])});
    }
    lt.print("reliable key agreement over the lossy link");

    if (telemetry) {
      // Each block ran on its own SimClock; advance the shared timeline by
      // the summed establishment spans and close the phase with one sample.
      double span_ms = 0.0;
      for (const double v : times) span_ms += v;
      telemetry_vt_ms += span_ms;
      telemetry->sample(telemetry_vt_ms);
    }
  }

  if (gateway_sessions > 0) {
    // Gateway mode: N devices arrive at one shared-clock gateway; each
    // session's link carries the fault flags above, and probe material
    // cycles through the pipeline's evaluation blocks (pure per device, so
    // the engine may batch sessions through the parallel pool).
    const auto& blocks = pipeline.blocks();
    if (blocks.empty()) {
      std::printf("\nno evaluation blocks to feed the gateway\n");
      return 0;
    }
    std::printf("\ngateway mode: %zu device sessions, %zu establishment "
                "slots, drop %.0f%%, corrupt %.0f%%\n",
                gateway_sessions, gateway_inflight, 100.0 * fault.drop_prob,
                100.0 * fault.corrupt_prob);
    protocol::GatewayConfig gcfg;
    gcfg.sessions = gateway_sessions;
    gcfg.max_inflight = gateway_inflight;
    gcfg.reliability.fault = fault;
    gcfg.seed = hash_combine64(cfg.trace.seed, fault.seed);
    // Telemetry rides the engine's lifecycle tick: samples land on a 1 s
    // virtual grid, offset by the phases already on the shared timeline.
    if (telemetry) gcfg.tick_interval_ms = 1000.0;
    protocol::GatewayEngine engine(
        gcfg, pipeline.reconciler(),
        [&blocks](std::uint64_t device, std::size_t attempt) {
          const auto& b = blocks[(device + attempt) % blocks.size()];
          return std::make_pair(b.alice_raw, b.bob_key);
        });
    if (cfg.use_prediction) {
      // Batched attempt-0 prefetch: one blocked predictor pass per
      // sim_batch regenerates, live, the same bits the per-attempt source
      // reads out of the cached evaluation blocks (infer_batch is
      // bit-identical per member to the infer() calls that produced those
      // blocks, so the two sources agree as BatchMaterialFn requires).
      const auto& samples = pipeline.test_samples();
      const std::size_t wpb = cfg.reconciler.key_bits / cfg.predictor.key_bits;
      const std::size_t n_blocks = blocks.size();
      engine.set_batch_material(
          [&pipeline, &samples, wpb, n_blocks](std::uint64_t first,
                                               std::size_t count) {
            std::vector<vkey::nn::Vec> windows;
            windows.reserve(count * wpb);
            for (std::size_t d = 0; d < count; ++d) {
              const std::size_t bi = (first + d) % n_blocks;
              for (std::size_t w = 0; w < wpb; ++w) {
                windows.push_back(samples[bi * wpb + w].alice_seq);
              }
            }
            const auto outs = pipeline.predictor().infer_batch(windows);
            std::vector<std::pair<BitVec, BitVec>> material(count);
            for (std::size_t d = 0; d < count; ++d) {
              const std::size_t bi = (first + d) % n_blocks;
              BitVec alice, bob;
              for (std::size_t w = 0; w < wpb; ++w) {
                alice.append(outs[d * wpb + w].bits);
                bob.append(samples[bi * wpb + w].bob_bits);
              }
              material[d] = {std::move(alice), std::move(bob)};
            }
            return material;
          });
    }
    if (telemetry) {
      const double vbase_ms = telemetry_vt_ms;
      engine.set_tick([&telemetry, vbase_ms](double now_ms) {
        telemetry->sample(vbase_ms + now_ms);
      });
    }
    const auto g = engine.run();
    if (telemetry) {
      telemetry_vt_ms += g.makespan_ms;
      telemetry->sample(telemetry_vt_ms);  // phase-boundary sample
    }

    Table gt({"metric", "value"});
    gt.add_row({"sessions", std::to_string(g.sessions)});
    gt.add_row({"established",
                Table::pct(static_cast<double>(g.established) /
                           static_cast<double>(g.sessions))});
    gt.add_row({"keys/s (virtual)", Table::fmt(g.keys_per_vsecond, 1)});
    gt.add_row({"median time-to-key",
                Table::fmt(g.median_time_to_key_ms, 1) + " virt ms"});
    gt.add_row({"p95 time-to-key",
                Table::fmt(g.p95_time_to_key_ms, 1) + " virt ms"});
    gt.add_row({"mean queue wait",
                Table::fmt(g.mean_queue_wait_ms, 1) + " virt ms"});
    gt.add_row({"bytes / established session",
                Table::fmt(g.bytes_per_session, 1)});
    gt.add_row({"rekeys", std::to_string(g.rekeys)});
    gt.add_row({"evictions (idle / failed)",
                std::to_string(g.evicted_idle) + " / " +
                    std::to_string(g.evicted_failed)});
    gt.add_row({"peak in-flight / queued",
                std::to_string(g.peak_inflight) + " / " +
                    std::to_string(g.peak_queued)});
    gt.add_row({"makespan",
                Table::fmt(g.makespan_ms / 1000.0, 1) + " virt s"});
    gt.print("gateway multi-session run");

    for (const auto& dump : g.failure_dumps) {
      std::printf("\nfailed session post-mortem: %s", dump.c_str());
    }
    if (g.failures_suppressed > 0) {
      std::printf("\n%zu more failed session(s) suppressed\n",
                  g.failures_suppressed);
    }
  }

  // Register the full wire.reject.* taxonomy before any dump so the CSV /
  // JSON structure is the same whether or not a given reject fired.
  if (metrics::enabled() && (dump_metrics || !metrics_json_path.empty())) {
    protocol::wire::register_wire_metrics();
  }
  if (dump_metrics) {
    if (metrics::enabled()) {
      std::printf("\nmetrics registry (VKEY_METRICS=off disables "
                  "collection):\n%s",
                  metrics::Registry::global().to_csv().c_str());
    } else {
      std::printf("\nmetrics collection is disabled (VKEY_METRICS=off)\n");
    }
  }
  if (!metrics_json_path.empty()) {
    std::ofstream out(metrics_json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "vkey_sim: cannot write %s\n",
                   metrics_json_path.c_str());
      return 1;
    }
    out << metrics::Registry::global().snapshot().dump(2);
    std::fprintf(stderr, "wrote %s\n", metrics_json_path.c_str());
  }
  if (telemetry) {
    telemetry->write_jsonl(telemetry_out_path);
    std::fprintf(stderr, "wrote %s\n", telemetry_out_path.c_str());
  }
  if (!trace_out_path.empty()) {
    // Virtual-clock spans only: SimClock time and the canonical
    // (start, id) export order make the file byte-identical for any
    // --threads value, so CI can diff it across lane counts.
    if (trace::TraceLog::global().write_chrome_trace(trace_out_path,
                                                     /*virtual_only=*/true)) {
      std::fprintf(stderr, "wrote %s\n", trace_out_path.c_str());
    } else {
      return 1;
    }
  }
  return 0;
}
