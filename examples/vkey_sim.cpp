// vkey_sim — command-line driver for the Vehicle-Key pipeline.
//
// Runs the full key-generation pipeline on a configurable scenario and
// prints the evaluation metrics; useful for parameter exploration without
// writing code.
//
//   ./build/examples/vkey_sim --scenario v2v-urban --speed 60 \
//       --train-rounds 600 --test-rounds 400 --seed 7 [--no-prediction]
//
// Flags (all optional):
//   --scenario {v2i-urban|v2i-rural|v2v-urban|v2v-rural}   default v2v-urban
//   --speed KMH            vehicle speed                    default 50
//   --train-rounds N       probe rounds used for training   default 600
//   --test-rounds N        probe rounds used for evaluation default 400
//   --hidden N             BiLSTM hidden units              default 32
//   --epochs N             predictor training epochs        default 40
//   --decoder-units N      reconciler decoder width         default 64
//   --seed N               simulation seed                  default 1
//   --no-prediction        ablate the BiLSTM (direct quantization)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.h"
#include "core/pipeline.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario v2i-urban|v2i-rural|v2v-urban|"
               "v2v-rural] [--speed KMH] [--train-rounds N] "
               "[--test-rounds N] [--hidden N] [--epochs N] "
               "[--decoder-units N] [--seed N] [--no-prediction]\n",
               argv0);
  std::exit(2);
}

ScenarioKind parse_scenario(const std::string& s, const char* argv0) {
  if (s == "v2i-urban") return ScenarioKind::kV2IUrban;
  if (s == "v2i-rural") return ScenarioKind::kV2IRural;
  if (s == "v2v-urban") return ScenarioKind::kV2VUrban;
  if (s == "v2v-rural") return ScenarioKind::kV2VRural;
  std::fprintf(stderr, "unknown scenario '%s'\n", s.c_str());
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioKind kind = ScenarioKind::kV2VUrban;
  double speed = 50.0;
  std::size_t train_rounds = 600, test_rounds = 400;
  PipelineConfig cfg;
  cfg.predictor.hidden = 32;
  cfg.predictor_epochs = 40;
  cfg.reconciler.decoder_units = 64;
  cfg.trace.seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") kind = parse_scenario(next(), argv[0]);
    else if (arg == "--speed") speed = std::atof(next());
    else if (arg == "--train-rounds") train_rounds = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--test-rounds") test_rounds = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--hidden") cfg.predictor.hidden = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--epochs") cfg.predictor_epochs = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--decoder-units") cfg.reconciler.decoder_units = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--seed") cfg.trace.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--no-prediction") cfg.use_prediction = false;
    else usage(argv[0]);
  }
  if (speed <= 0.0 || train_rounds == 0 || test_rounds == 0) usage(argv[0]);

  cfg.trace.scenario = make_scenario(kind, speed);

  std::printf("vkey_sim: %s at %.0f km/h, seed %llu, %zu train / %zu test "
              "rounds, prediction %s\n",
              to_string(kind).c_str(), speed,
              static_cast<unsigned long long>(cfg.trace.seed), train_rounds,
              test_rounds, cfg.use_prediction ? "on" : "off");

  KeyGenPipeline pipeline(cfg);
  const auto m = pipeline.run(train_rounds, test_rounds);

  Table t({"metric", "value"});
  t.add_row({"key blocks evaluated", std::to_string(m.blocks)});
  t.add_row({"KAR pre-reconciliation", Table::pct(m.mean_kar_pre)});
  t.add_row({"KAR post-reconciliation",
             Table::pct(m.mean_kar_post) + " ± " +
                 Table::pct(m.std_kar_post, 2)});
  t.add_row({"exact-key block rate", Table::pct(m.key_success_rate)});
  t.add_row({"KGR (net secret bit/s)", Table::fmt(m.kgr_bits_per_s, 3)});
  t.add_row({"Eve KAR (one-shot decode)", Table::pct(m.mean_eve_kar)});
  t.add_row({"Eve KAR (iterative misuse)",
             Table::pct(m.mean_eve_kar_iterative)});
  t.add_row({"evaluation span", Table::fmt(m.test_duration_s, 0) + " s"});
  t.print("results");
  return 0;
}
