// V2V convoy scenario: two vehicles travelling together rekey periodically.
//
// Demonstrates:
//  * running the pipeline once to train models for the environment,
//  * deriving a fresh session key from consecutive key blocks (periodic
//    rekeying — the IoV pattern where short-lived links rotate keys),
//  * how the key agreement rate behaves across convoy speeds.
//
// Build & run:  ./build/examples/v2v_convoy
#include <cstdio>

#include "common/table.h"
#include "core/pipeline.h"
#include "protocol/session.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

int main() {
  // --- speed sweep: how robust is the convoy link? ------------------------
  Table t({"convoy speed (km/h)", "KAR", "KGR (bit/s)", "usable blocks"});
  for (double speed : {30.0, 60.0, 90.0}) {
    PipelineConfig cfg;
    cfg.trace.scenario = make_scenario(ScenarioKind::kV2VRural, speed);
    cfg.trace.seed = 1234 + static_cast<std::uint64_t>(speed);
    cfg.use_prediction = false;  // keep the example quick
    cfg.reconciler.decoder_units = 64;
    cfg.reconciler_epochs = 15;
    cfg.reconciler_samples = 1500;
    KeyGenPipeline pipeline(cfg);
    const auto m = pipeline.run(150, 300);
    std::size_t usable = 0;
    for (const auto& blk : pipeline.blocks()) usable += blk.success;
    t.add_row({Table::fmt(speed, 0), Table::pct(m.mean_kar_post),
               Table::fmt(m.kgr_bits_per_s, 2), std::to_string(usable)});
  }
  t.print("V2V convoy (rural highway): key quality vs speed");

  // --- periodic rekeying over one trace -----------------------------------
  PipelineConfig cfg;
  cfg.trace.scenario = make_scenario(ScenarioKind::kV2VRural, 60.0);
  cfg.trace.seed = 99;
  cfg.use_prediction = false;
  cfg.reconciler.decoder_units = 64;
  cfg.reconciler_epochs = 15;
  cfg.reconciler_samples = 1500;
  KeyGenPipeline pipeline(cfg);
  pipeline.run(150, 400);

  std::printf("\nPeriodic rekeying: each usable block becomes one session "
              "key.\n");
  const PrivacyAmplifier amplifier(128);
  int session = 0;
  for (const auto& blk : pipeline.blocks()) {
    if (!blk.success || session >= 5) continue;
    const BitVec key = amplifier.amplify(blk.alice_corrected,
                                         static_cast<std::uint64_t>(session));
    const auto bytes = key.to_bytes();
    std::printf("  session %d key: %02x%02x%02x%02x... (128 bits)\n",
                session, bytes[0], bytes[1], bytes[2], bytes[3]);
    ++session;
  }
  if (session == 0) {
    std::printf("  (no usable blocks in this short demo trace)\n");
    return 1;
  }
  std::printf("Rekeyed %d times without any pre-shared secret.\n", session);
  return 0;
}
