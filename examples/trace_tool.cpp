// trace_tool — generate, export, import and analyze probe traces.
//
// The bridge between the simulator and real hardware captures:
//
//   # generate a simulated trace and export it
//   ./build/examples/trace_tool generate --scenario v2v-urban --rounds 200
//       ... --seed 7 --out trace.csv
//
//   # analyze any trace in the CSV schema (simulated or captured)
//   ./build/examples/trace_tool analyze --in trace.csv
//
// `analyze` prints the statistics Vehicle-Key cares about: pRSSI and
// boundary-arRSSI correlations, stream correlation under mirrored pairing,
// and the direct 1-bit quantization agreement — enough to judge whether a
// capture will produce usable keys before training anything.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "channel/trace_io.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/dataset.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s generate [--scenario v2i-urban|v2i-rural|"
               "v2v-urban|v2v-rural] [--speed KMH] [--rounds N] [--seed N] "
               "--out FILE\n"
               "       %s analyze --in FILE\n",
               argv0, argv0);
  std::exit(2);
}

ScenarioKind parse_scenario(const std::string& s, const char* argv0) {
  if (s == "v2i-urban") return ScenarioKind::kV2IUrban;
  if (s == "v2i-rural") return ScenarioKind::kV2IRural;
  if (s == "v2v-urban") return ScenarioKind::kV2VUrban;
  if (s == "v2v-rural") return ScenarioKind::kV2VRural;
  usage(argv0);
}

/// Strict numeric flag parsing: `std::atof`/`std::atoll` return 0 on
/// garbage, so `--speed banana` would silently run at speed 0. Require the
/// whole token to parse or bail out through usage().
double parse_double(const char* flag, const char* s, const char* argv0) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "%s expects a number, got '%s'\n", flag, s);
    usage(argv0);
  }
  return v;
}

std::uint64_t parse_u64(const char* flag, const char* s, const char* argv0) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || s[0] == '-') {
    std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n",
                 flag, s);
    usage(argv0);
  }
  return static_cast<std::uint64_t>(v);
}

int cmd_generate(int argc, char** argv) {
  ScenarioKind kind = ScenarioKind::kV2VUrban;
  double speed = 50.0;
  std::size_t rounds = 200;
  std::uint64_t seed = 1;
  std::string out;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") kind = parse_scenario(next(), argv[0]);
    else if (arg == "--speed") speed = parse_double("--speed", next(), argv[0]);
    else if (arg == "--rounds") rounds = static_cast<std::size_t>(parse_u64("--rounds", next(), argv[0]));
    else if (arg == "--seed") seed = parse_u64("--seed", next(), argv[0]);
    else if (arg == "--out") out = next();
    else usage(argv[0]);
  }
  if (out.empty() || rounds == 0 || speed <= 0.0) usage(argv[0]);

  TraceConfig cfg;
  cfg.scenario = make_scenario(kind, speed);
  cfg.seed = seed;
  TraceGenerator gen(cfg);
  const auto trace = gen.generate(rounds);
  save_trace_csv(out, trace);
  std::printf("wrote %zu rounds (%d rRSSI samples per packet, %.2f s per "
              "round) to %s\n",
              trace.size(), gen.phy().rssi_samples_per_packet(),
              gen.round_duration(), out.c_str());
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  std::string in;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--in" && i + 1 < argc) in = argv[++i];
    else usage(argv[0]);
  }
  if (in.empty()) usage(argv[0]);

  const auto rounds = load_trace_csv(in);
  std::printf("loaded %zu rounds from %s\n\n", rounds.size(), in.c_str());
  if (rounds.size() < 8) {
    std::printf("too few rounds for statistics\n");
    return 1;
  }

  std::vector<double> pa, pb, aa, ab;
  const ArRssiExtractor boundary(0.10);
  const bool has_eve = !rounds.front().eve_rx_bob_tx.rrssi.empty();
  std::vector<double> ae;
  for (const auto& r : rounds) {
    pa.push_back(r.alice_rx.prssi());
    pb.push_back(r.bob_rx.prssi());
    const auto bp = boundary.boundary_pair(r);
    aa.push_back(bp.alice_arrssi);
    ab.push_back(bp.bob_arrssi);
    if (has_eve) ae.push_back(boundary.eve_boundary(r));
  }

  Table t({"statistic", "value"});
  t.add_row({"pRSSI correlation (Alice-Bob)",
             Table::fmt(stats::pearson(pa, pb), 3)});
  t.add_row({"boundary arRSSI correlation (10% window)",
             Table::fmt(stats::pearson(aa, ab), 3)});
  if (has_eve) {
    t.add_row({"boundary arRSSI correlation (Bob-Eve)",
               Table::fmt(stats::pearson(ab, ae), 3)});
  }

  // Key-material view: mirrored reciprocal-zone stream.
  DatasetConfig dc;
  ArRssiStreams st;
  if (has_eve) {
    st = extract_streams(rounds, dc.extractor, dc.reciprocal_windows);
  } else {
    // Build Alice/Bob streams only; reuse Bob's as a stand-in for Eve so
    // extract_streams' alignment logic applies (Eve stats suppressed).
    auto with_eve = rounds;
    for (auto& r : with_eve) r.eve_rx_bob_tx = r.bob_rx;
    st = extract_streams(with_eve, dc.extractor, dc.reciprocal_windows);
  }
  t.add_row({"key-stream correlation (mirrored pairing)",
             Table::fmt(stats::pearson(st.alice, st.bob), 3)});
  MultiBitQuantizer q(dc.quantizer);
  t.add_row({"direct 1-bit agreement",
             Table::pct(q.quantize(st.alice).bits.agreement(
                 q.quantize(st.bob).bits))});
  t.print("trace quality");

  std::printf("\nRule of thumb: key-stream agreement above ~85%% "
              "reconciles cleanly with AE-64; below ~80%% expect failed "
              "blocks.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
  if (std::strcmp(argv[1], "analyze") == 0) return cmd_analyze(argc, argv);
  usage(argv[0]);
}
