// V2I scenario: a vehicle keys against a roadside unit (RSU), demonstrating
// the asymmetric deployment the paper highlights: the BiLSTM inference runs
// on the power-rich RSU side only, while the vehicle (Bob's role) performs
// just quantization + syndrome encoding — microseconds of work.
//
// Also demonstrates model transfer: the RSU reuses a base model trained in
// another environment and fine-tunes with a small amount of local data
// (paper Fig. 14's deployment story).
//
// Build & run:  ./build/examples/v2i_roadside
#include <cstdio>

#include "core/dataset.h"
#include "core/pipeline.h"
#include "nn/serialize.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

namespace {

std::vector<TrainingSample> collect(ScenarioKind kind, std::size_t rounds,
                                    std::size_t stride, std::uint64_t seed) {
  TraceConfig tc;
  tc.scenario = make_scenario(kind, 50.0);
  tc.seed = seed;
  TraceGenerator gen(tc);
  DatasetConfig dc;
  dc.stride = stride;
  return make_samples(
      extract_streams(gen.generate(rounds), dc.extractor,
                      dc.reciprocal_windows),
      dc);
}

double agreement(const PredictorQuantizer& model,
                 const std::vector<TrainingSample>& test) {
  double a = 0.0;
  for (const auto& s : test) {
    a += model.infer(s.alice_seq).bits.agreement(s.bob_bits);
  }
  return a / static_cast<double>(test.size());
}

}  // namespace

int main() {
  PredictorConfig pc;
  pc.hidden = 24;
  pc.seed = 11;

  std::printf("Training the RSU base model in the urban deployment...\n");
  const auto urban_train = collect(ScenarioKind::kV2IUrban, 700, 4, 1);
  PredictorQuantizer base(pc);
  base.train(urban_train, 30);
  const auto base_weights = nn::snapshot(base.parameters());

  std::printf("A new RSU goes up on a rural road. Fine-tuning with 10%% of "
              "the data...\n");
  const auto rural_train = collect(ScenarioKind::kV2IRural, 700, 4, 2);
  const auto rural_test = collect(ScenarioKind::kV2IRural, 200, 0, 3);

  PredictorQuantizer tuned(pc);
  nn::restore(tuned.parameters(), base_weights);
  const std::vector<TrainingSample> subset(
      rural_train.begin(),
      rural_train.begin() + static_cast<std::ptrdiff_t>(rural_train.size() / 10));
  tuned.train(subset, 10);

  PredictorQuantizer scratch(pc);
  scratch.train(rural_train, 30);

  std::printf("\n  fine-tuned  (10%% data, 10 epochs): %.2f%% agreement\n",
              100.0 * agreement(tuned, rural_test));
  std::printf("  from scratch (100%% data, 30 epochs): %.2f%% agreement\n",
              100.0 * agreement(scratch, rural_test));

  // The vehicle side's entire online work: quantize + nothing else.
  MultiBitQuantizer vehicle_quantizer(
      {.bits_per_sample = 1, .block_size = 16, .guard_band_ratio = 0.0});
  const auto& sample = rural_test.front();
  std::vector<double> vehicle_window(sample.bob_seq.begin(),
                                     sample.bob_seq.end());
  const auto vehicle_bits = vehicle_quantizer.quantize(vehicle_window);
  std::printf("\nVehicle-side work per 64-bit fragment: one pass of the "
              "multi-bit quantizer (%zu bits emitted) plus a %u-float "
              "syndrome upload — no neural network on the vehicle.\n",
              vehicle_bits.bits.size(), 32u);
  return 0;
}
