// Eavesdropper demo: everything Eve can do, and why none of it works.
//
// Eve follows Alice's car a few metres behind, records every radio frame
// and every protocol message, and knows the protocol, the trained models
// and the session parameters. This demo walks through her three options:
//   1. quantize her own observations (imitating attack),
//   2. feed the overheard syndrome + her material to the public decoder
//      (eavesdropping attack, paper Fig. 15a),
//   3. actively tamper with the syndrome in flight (MITM).
//
// Build & run:  ./build/examples/eavesdropper_demo
#include <cstdio>

#include "core/pipeline.h"
#include "protocol/attacks.h"
#include "protocol/session.h"

using namespace vkey;
using namespace vkey::channel;
using namespace vkey::core;

int main() {
  PipelineConfig cfg;
  cfg.trace.scenario = make_scenario(ScenarioKind::kV2VUrban, 50.0);
  cfg.trace.seed = 5150;
  cfg.use_prediction = false;
  cfg.reconciler.decoder_units = 64;
  cfg.reconciler_epochs = 15;
  cfg.reconciler_samples = 1500;
  KeyGenPipeline pipeline(cfg);
  const auto metrics = pipeline.run(150, 400);

  std::printf("Legitimate link:    %.2f%% bit agreement after "
              "reconciliation\n",
              100.0 * metrics.mean_kar_post);
  std::printf("1. Imitating attack: Eve drives the same route and runs the "
              "same pipeline:\n");
  std::printf("   -> %.2f%% agreement with Bob's key "
              "(coin-flipping scores 50%%)\n",
              100.0 * metrics.mean_eve_kar);
  std::printf("   Her receiver is > lambda/2 (%.2f m) from both cars: the "
              "multipath fading she records is statistically independent.\n",
              0.6912 / 2.0);

  std::printf("2. Eavesdropping attack: she decodes the overheard syndrome "
              "with her own material:\n");
  std::printf("   -> one-shot decode %.2f%%, iterative misuse %.2f%% — "
              "the decoder only expresses *differences* from Bob's key, "
              "useless without correlated material.\n",
              100.0 * metrics.mean_eve_kar,
              100.0 * metrics.mean_eve_kar_iterative);

  // 3. Active MITM on a live session.
  const KeyBlockResult* block = nullptr;
  for (const auto& blk : pipeline.blocks()) {
    if (blk.success) {
      block = &blk;
      break;
    }
  }
  if (block == nullptr) {
    std::printf("(no usable block in this short trace; rerun)\n");
    return 1;
  }
  protocol::SessionConfig scfg;
  protocol::AliceSession alice(scfg, pipeline.reconciler(),
                               block->alice_corrected);
  protocol::BobSession bob(scfg, pipeline.reconciler(), block->bob_key);
  protocol::PublicChannel channel;
  protocol::install_syndrome_tamper(channel);
  const bool established = run_key_agreement(channel, alice, bob);
  std::printf("3. MITM tampering with the syndrome in flight:\n");
  std::printf("   -> session %s (Alice's verdict: %s)\n",
              established ? "ESTABLISHED (!!)" : "aborted",
              to_string(alice.last_reject()).c_str());

  // And a replayed syndrome from the recorded transcript.
  protocol::PublicChannel clean;
  protocol::AliceSession alice2(scfg, pipeline.reconciler(),
                                block->alice_corrected);
  protocol::BobSession bob2(scfg, pipeline.reconciler(), block->bob_key);
  if (run_key_agreement(clean, alice2, bob2)) {
    const auto syn = protocol::find_syndrome(clean);
    if (syn && !alice2.handle(protocol::make_replay(*syn)).has_value()) {
      std::printf("4. Replaying the recorded syndrome later: rejected "
                  "(%s).\n",
                  to_string(alice2.last_reject()).c_str());
    }
  }
  std::printf("\nEve leaves empty-handed.\n");
  return 0;
}
